//! Content-addressed snapshot storage with a manifest chain.
//!
//! A checkpoint of the simulated world is a set of named *sections* (one per
//! component: orchestrator, RAN, transport, …), each serialized to canonical
//! JSON bytes. [`SnapshotStore`] keeps every section as an object addressed
//! by its SHA-256 — identical state stored once, however many epochs repeat
//! it, which is what makes per-epoch checkpointing of a slowly-changing
//! world affordable — and records one [`SnapshotManifest`] per checkpoint
//! epoch mapping section names to object hashes. Manifests form a chain
//! (each carries the root hash of its parent), so two runs that should agree
//! can be compared hash-by-hash without deserializing anything:
//! [`replay_bisect`] binary-searches the epoch range for the first diverging
//! manifest and names the components whose hashes moved.
//!
//! The SHA-256 implementation is local (FIPS 180-4, ~60 lines) because the
//! workspace deliberately takes no new dependencies; it is tested against
//! the standard vectors below.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

const ROUND_CONSTANTS: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// SHA-256 digest of `bytes` (FIPS 180-4).
pub fn sha256(bytes: &[u8]) -> [u8; 32] {
    let mut h: [u32; 8] = [
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
        0x5be0cd19,
    ];
    // Pad: message, 0x80, zeros, 64-bit big-endian bit length.
    let mut msg = bytes.to_vec();
    let bit_len = (bytes.len() as u64).wrapping_mul(8);
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());

    let mut w = [0u32; 64];
    for block in msg.chunks_exact(64) {
        for (i, word) in w.iter_mut().take(16).enumerate() {
            *word = u32::from_be_bytes([
                block[4 * i],
                block[4 * i + 1],
                block[4 * i + 2],
                block[4 * i + 3],
            ]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = hh
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(ROUND_CONSTANTS[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (slot, v) in h.iter_mut().zip([a, b, c, d, e, f, g, hh]) {
            *slot = slot.wrapping_add(v);
        }
    }
    let mut out = [0u8; 32];
    for (i, word) in h.iter().enumerate() {
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// Lowercase hex SHA-256 of `bytes` — the object address.
pub fn sha256_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(64);
    for b in sha256(bytes) {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Pointer to one stored section: content hash plus size.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SectionRef {
    /// Hex SHA-256 of the section's serialized bytes.
    pub hash: String,
    /// Serialized size in bytes.
    pub bytes: u64,
}

/// One checkpoint: an epoch, a link to the previous checkpoint, and the
/// content hash of every component section.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotManifest {
    /// Monitoring epoch the world was checkpointed at.
    pub epoch: u64,
    /// Root hash of the parent manifest, or `None` for the chain head.
    pub parent: Option<String>,
    /// Component name → stored section, in stable (sorted) order.
    pub sections: BTreeMap<String, SectionRef>,
}

impl SnapshotManifest {
    /// The manifest's identity: SHA-256 over a canonical rendering of
    /// (epoch, parent, every section's name/hash/size). Two manifests share
    /// a root hash iff they describe byte-identical worlds with the same
    /// history link.
    pub fn root_hash(&self) -> String {
        let mut canon = format!("epoch:{}\n", self.epoch);
        canon.push_str(&format!(
            "parent:{}\n",
            self.parent.as_deref().unwrap_or("-")
        ));
        for (name, section) in &self.sections {
            canon.push_str(&format!("{name}:{}:{}\n", section.hash, section.bytes));
        }
        sha256_hex(canon.as_bytes())
    }
}

/// Errors from snapshot storage.
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem failure.
    Io(io::Error),
    /// Stored bytes did not hash to their address, or a manifest broke the
    /// parent chain.
    Corrupt(String),
    /// (De)serialization failure.
    Codec(serde_json::Error),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io: {e}"),
            SnapshotError::Corrupt(m) => write!(f, "snapshot corrupt: {m}"),
            SnapshotError::Codec(e) => write!(f, "snapshot codec: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl From<serde_json::Error> for SnapshotError {
    fn from(e: serde_json::Error) -> Self {
        SnapshotError::Codec(e)
    }
}

/// On-disk layout: `objects/<2-hex>/<62-hex>` content-addressed blobs plus
/// `manifests/epoch-<20-digit>.json`, one per checkpoint.
#[derive(Debug, Clone)]
pub struct SnapshotStore {
    root: PathBuf,
}

impl SnapshotStore {
    /// Open (creating directories as needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<SnapshotStore, SnapshotError> {
        let root = root.into();
        fs::create_dir_all(root.join("objects"))?;
        fs::create_dir_all(root.join("manifests"))?;
        Ok(SnapshotStore { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn object_path(&self, hash: &str) -> PathBuf {
        self.root.join("objects").join(&hash[..2]).join(&hash[2..])
    }

    /// Store `bytes`, returning its address. Writing the same content twice
    /// is free: the object already exists under its hash.
    pub fn put_object(&self, bytes: &[u8]) -> Result<SectionRef, SnapshotError> {
        let hash = sha256_hex(bytes);
        let path = self.object_path(&hash);
        if !path.exists() {
            fs::create_dir_all(path.parent().expect("object path has a shard dir"))?;
            // Write-then-rename so a crashed writer never leaves a torn
            // object at its final address.
            let tmp = path.with_extension("tmp");
            fs::write(&tmp, bytes)?;
            fs::rename(&tmp, &path)?;
        }
        Ok(SectionRef {
            hash,
            bytes: bytes.len() as u64,
        })
    }

    /// Fetch the object at `hash`, verifying its content address.
    pub fn get_object(&self, hash: &str) -> Result<Vec<u8>, SnapshotError> {
        let bytes = fs::read(self.object_path(hash))?;
        let actual = sha256_hex(&bytes);
        if actual != hash {
            return Err(SnapshotError::Corrupt(format!(
                "object {hash} hashes to {actual}"
            )));
        }
        Ok(bytes)
    }

    /// True when an object is already stored at `hash`.
    pub fn contains(&self, hash: &str) -> bool {
        self.object_path(hash).exists()
    }

    fn manifest_path(&self, epoch: u64) -> PathBuf {
        self.root
            .join("manifests")
            .join(format!("epoch-{epoch:020}.json"))
    }

    /// Record the checkpoint manifest for its epoch.
    ///
    /// Enforces the chain: if the store already holds manifests, the new
    /// manifest's `parent` must be the latest one's root hash, and its epoch
    /// must be strictly later.
    pub fn append_manifest(&self, manifest: &SnapshotManifest) -> Result<(), SnapshotError> {
        if let Some(last) = self.latest_manifest()? {
            if manifest.epoch <= last.epoch {
                return Err(SnapshotError::Corrupt(format!(
                    "manifest epoch {} not after chain tip {}",
                    manifest.epoch, last.epoch
                )));
            }
            if manifest.parent.as_deref() != Some(last.root_hash().as_str()) {
                return Err(SnapshotError::Corrupt(format!(
                    "manifest at epoch {} does not chain to tip {}",
                    manifest.epoch,
                    last.root_hash()
                )));
            }
        }
        let path = self.manifest_path(manifest.epoch);
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, serde_json::to_vec_pretty(manifest)?)?;
        fs::rename(&tmp, &path)?;
        Ok(())
    }

    /// Checkpointed epochs, ascending.
    pub fn epochs(&self) -> Result<Vec<u64>, SnapshotError> {
        let mut epochs = Vec::new();
        for entry in fs::read_dir(self.root.join("manifests"))? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(num) = name
                .strip_prefix("epoch-")
                .and_then(|s| s.strip_suffix(".json"))
            {
                if let Ok(epoch) = num.parse::<u64>() {
                    epochs.push(epoch);
                }
            }
        }
        epochs.sort_unstable();
        Ok(epochs)
    }

    /// Load the manifest checkpointed at `epoch`.
    pub fn load_manifest(&self, epoch: u64) -> Result<SnapshotManifest, SnapshotError> {
        let bytes = fs::read(self.manifest_path(epoch))?;
        Ok(serde_json::from_slice(&bytes)?)
    }

    /// The most recent manifest, if any checkpoint exists.
    pub fn latest_manifest(&self) -> Result<Option<SnapshotManifest>, SnapshotError> {
        match self.epochs()?.last() {
            Some(&epoch) => Ok(Some(self.load_manifest(epoch)?)),
            None => Ok(None),
        }
    }

    /// Total bytes of stored objects (deduplicated on-disk footprint).
    pub fn object_bytes(&self) -> Result<u64, SnapshotError> {
        let mut total = 0;
        for shard in fs::read_dir(self.root.join("objects"))? {
            let shard = shard?;
            if shard.file_type()?.is_dir() {
                for obj in fs::read_dir(shard.path())? {
                    total += obj?.metadata()?.len();
                }
            }
        }
        Ok(total)
    }

    /// Number of distinct stored objects.
    pub fn object_count(&self) -> Result<u64, SnapshotError> {
        let mut count = 0;
        for shard in fs::read_dir(self.root.join("objects"))? {
            let shard = shard?;
            if shard.file_type()?.is_dir() {
                count += fs::read_dir(shard.path())?.count() as u64;
            }
        }
        Ok(count)
    }
}

/// Where and how two manifest chains first disagree.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Divergence {
    /// First common checkpoint epoch whose manifests differ.
    pub epoch: u64,
    /// Sections whose hashes differ at that epoch (or exist on one side
    /// only), sorted — the components to blame.
    pub components: Vec<String>,
    /// Manifests actually compared: the binary search's probe count, which
    /// the self-test asserts is O(log n), not a linear scan.
    pub probes: u64,
}

/// Find the first checkpoint where two runs that should agree do not.
///
/// Both stores must checkpoint the same epochs (the common subset is
/// compared). Divergence is persistent — once two deterministic runs split,
/// every later checkpoint differs — so "manifest differs at epoch e" is
/// monotone in e and binary search finds the first split in O(log n)
/// manifest loads. Returns `None` when every common checkpoint agrees.
pub fn replay_bisect(
    a: &SnapshotStore,
    b: &SnapshotStore,
) -> Result<Option<Divergence>, SnapshotError> {
    let epochs_a = a.epochs()?;
    let epochs_b: std::collections::BTreeSet<u64> = b.epochs()?.into_iter().collect();
    let common: Vec<u64> = epochs_a
        .into_iter()
        .filter(|e| epochs_b.contains(e))
        .collect();
    if common.is_empty() {
        return Ok(None);
    }
    let mut probes = 0u64;
    let mut differs = |epoch: u64| -> Result<bool, SnapshotError> {
        probes += 1;
        Ok(a.load_manifest(epoch)?.root_hash() != b.load_manifest(epoch)?.root_hash())
    };
    // No divergence at the tip means none anywhere (persistence).
    if !differs(*common.last().expect("non-empty"))? {
        return Ok(None);
    }
    // Invariant: common[hi] differs; everything before common[lo] agrees.
    let mut lo = 0usize;
    let mut hi = common.len() - 1;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if differs(common[mid])? {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let epoch = common[lo];
    let ma = a.load_manifest(epoch)?;
    let mb = b.load_manifest(epoch)?;
    let mut components: Vec<String> = ma
        .sections
        .iter()
        .filter(|(name, section)| mb.sections.get(*name) != Some(section))
        .map(|(name, _)| name.clone())
        .collect();
    for name in mb.sections.keys() {
        if !ma.sections.contains_key(name) {
            components.push(name.clone());
        }
    }
    components.sort_unstable();
    components.dedup();
    Ok(Some(Divergence {
        epoch,
        components,
        probes,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ovnes-snapshot-{}-{tag}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn manifest(
        epoch: u64,
        parent: Option<&SnapshotManifest>,
        payload: &[(&str, &str)],
    ) -> SnapshotManifest {
        SnapshotManifest {
            epoch,
            parent: parent.map(SnapshotManifest::root_hash),
            sections: payload
                .iter()
                .map(|(name, content)| {
                    (
                        name.to_string(),
                        SectionRef {
                            hash: sha256_hex(content.as_bytes()),
                            bytes: content.len() as u64,
                        },
                    )
                })
                .collect(),
        }
    }

    #[test]
    fn sha256_standard_vectors() {
        assert_eq!(
            sha256_hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha256_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            sha256_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // Padding edge: 55/56/64-byte messages straddle the length block.
        for n in [55usize, 56, 63, 64, 65] {
            let msg = vec![0x61u8; n];
            assert_eq!(sha256(&msg).len(), 32, "length {n}");
        }
        assert_eq!(
            sha256_hex(&[0x61u8; 56]),
            "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a"
        );
    }

    #[test]
    fn objects_round_trip_and_deduplicate() {
        let store = SnapshotStore::open(scratch("objects")).unwrap();
        let a = store.put_object(b"hello world").unwrap();
        let again = store.put_object(b"hello world").unwrap();
        let b = store.put_object(b"other").unwrap();
        assert_eq!(a, again, "same content, same address");
        assert_ne!(a.hash, b.hash);
        assert_eq!(store.object_count().unwrap(), 2, "dedup stores once");
        assert_eq!(store.get_object(&a.hash).unwrap(), b"hello world");
        assert!(store.contains(&a.hash));
        assert!(!store.contains(&sha256_hex(b"absent")));
        assert_eq!(
            store.object_bytes().unwrap(),
            ("hello world".len() + "other".len()) as u64
        );
    }

    #[test]
    fn corrupted_object_is_detected() {
        let store = SnapshotStore::open(scratch("corrupt")).unwrap();
        let section = store.put_object(b"precious state").unwrap();
        let path = store.object_path(&section.hash);
        let mut bytes = fs::read(&path).unwrap();
        bytes[0] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            store.get_object(&section.hash),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn manifest_chain_appends_loads_and_guards_linkage() {
        let store = SnapshotStore::open(scratch("chain")).unwrap();
        assert!(store.latest_manifest().unwrap().is_none());
        let m1 = manifest(10, None, &[("ran", "r1"), ("transport", "t1")]);
        store.append_manifest(&m1).unwrap();
        let m2 = manifest(20, Some(&m1), &[("ran", "r2"), ("transport", "t1")]);
        store.append_manifest(&m2).unwrap();
        assert_eq!(store.epochs().unwrap(), vec![10, 20]);
        assert_eq!(store.load_manifest(10).unwrap(), m1);
        assert_eq!(store.latest_manifest().unwrap(), Some(m2.clone()));

        // Wrong parent: rejected.
        let orphan = manifest(30, Some(&m1), &[("ran", "r3")]);
        assert!(matches!(
            store.append_manifest(&orphan),
            Err(SnapshotError::Corrupt(_))
        ));
        // Non-advancing epoch: rejected.
        let stale = manifest(20, Some(&m2), &[("ran", "r3")]);
        assert!(matches!(
            store.append_manifest(&stale),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn root_hash_is_sensitive_to_every_field() {
        let base = manifest(5, None, &[("a", "x"), ("b", "y")]);
        let mut other = base.clone();
        other.epoch = 6;
        assert_ne!(base.root_hash(), other.root_hash(), "epoch");
        let mut other = base.clone();
        other.sections.get_mut("a").unwrap().hash = sha256_hex(b"z");
        assert_ne!(base.root_hash(), other.root_hash(), "section hash");
        let mut other = base.clone();
        other.parent = Some(base.root_hash());
        assert_ne!(base.root_hash(), other.root_hash(), "parent");
        assert_eq!(base.root_hash(), base.clone().root_hash(), "deterministic");
    }

    /// Two chains over `epochs`, identical until `split_at`, after which
    /// chain B's `component` section carries different content.
    fn diverging_chains(
        tag: &str,
        epochs: &[u64],
        split_at: u64,
        component: &str,
    ) -> (SnapshotStore, SnapshotStore) {
        let a = SnapshotStore::open(scratch(&format!("{tag}-a"))).unwrap();
        let b = SnapshotStore::open(scratch(&format!("{tag}-b"))).unwrap();
        let (mut prev_a, mut prev_b): (Option<SnapshotManifest>, Option<SnapshotManifest>) =
            (None, None);
        for &epoch in epochs {
            let shared = format!("shared-{epoch}");
            let ours = format!("state-{epoch}");
            let theirs = if epoch >= split_at {
                format!("state-{epoch}-flipped")
            } else {
                ours.clone()
            };
            let ma = manifest(
                epoch,
                prev_a.as_ref(),
                &[("stable", shared.as_str()), (component, ours.as_str())],
            );
            let mb = manifest(
                epoch,
                prev_b.as_ref(),
                &[("stable", shared.as_str()), (component, theirs.as_str())],
            );
            a.append_manifest(&ma).unwrap();
            b.append_manifest(&mb).unwrap();
            prev_a = Some(ma);
            prev_b = Some(mb);
        }
        (a, b)
    }

    #[test]
    fn bisect_finds_exact_epoch_and_component() {
        let epochs: Vec<u64> = (1..=64).map(|i| i * 10).collect();
        for split in [10u64, 250, 640] {
            let (a, b) = diverging_chains(&format!("split{split}"), &epochs, split, "rng");
            let d = replay_bisect(&a, &b).unwrap().expect("chains diverge");
            assert_eq!(d.epoch, split);
            assert_eq!(d.components, vec!["rng".to_string()]);
            assert!(
                d.probes as usize <= epochs.len().ilog2() as usize + 2,
                "binary search, not a scan: {} probes over {} epochs",
                d.probes,
                epochs.len()
            );
        }
    }

    #[test]
    fn bisect_agreeing_chains_is_none() {
        let epochs: Vec<u64> = (1..=16).collect();
        let (a, b) = diverging_chains("agree", &epochs, u64::MAX, "rng");
        assert_eq!(replay_bisect(&a, &b).unwrap(), None);
        // And disjoint chains have nothing to compare.
        let empty = SnapshotStore::open(scratch("empty")).unwrap();
        assert_eq!(replay_bisect(&a, &empty).unwrap(), None);
    }
}
