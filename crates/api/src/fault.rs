//! Deterministic control-plane fault injection.
//!
//! The physical demo's orchestrator speaks REST to the RAN, transport, and
//! cloud controllers — calls that in practice get dropped, delayed,
//! corrupted, or answered 5xx by a flapping controller. This module makes
//! those failure modes injectable on any [`Transport`] — the in-process
//! [`MessageBus`](crate::bus::MessageBus) or the socket RPC plane —
//! without giving up bit-for-bit reproducibility:
//!
//! * [`FaultPlan`] — a declarative, serializable description of what goes
//!   wrong per endpoint: drop/transient-error/delay/corruption
//!   probabilities plus scheduled outage windows. The plan carries its own
//!   RNG seed, so fault realizations never perturb the simulation's other
//!   random streams.
//! * [`FaultInjector`] — wraps [`Transport::call`] and applies one plan.
//!   An endpoint the plan doesn't mention (or mentions with all-zero
//!   probabilities) is passed through untouched — the zero-fault path makes
//!   **no** RNG draws and is byte-identical to the unwrapped bus. On a
//!   socket transport, decided drops and outages are additionally
//!   *realized* as physical connection teardowns (see [`crate::rpc`]).
//! * [`RetryPolicy`] — the client-side survival kit: bounded attempts,
//!   exponential backoff with deterministic jitter, and a per-call
//!   deadline.
//!
//! Fault precedence per attempt: scheduled outage (no draw) → drop →
//! transient error → delay → dispatch → response corruption. Every draw is
//! conditional on its probability being positive, which is what keeps the
//! quiet path draw-free.

use crate::bus::BusError;
use crate::envelope::Response;
use crate::transport::Transport;
use ovnes_sim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Why an injected call did not complete.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CallFailure {
    /// The endpoint was inside a scheduled outage window.
    Down,
    /// The request was dropped before reaching the handler (timeout from
    /// the caller's point of view).
    Dropped,
    /// The endpoint answered with a transient 5xx-style failure.
    Transient,
    /// The underlying bus failed (no handler, envelope error).
    Bus(String),
}

impl fmt::Display for CallFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CallFailure::Down => f.write_str("endpoint down (scheduled outage)"),
            CallFailure::Dropped => f.write_str("request dropped"),
            CallFailure::Transient => f.write_str("transient endpoint error"),
            CallFailure::Bus(e) => write!(f, "bus: {e}"),
        }
    }
}

impl std::error::Error for CallFailure {}

/// Fault configuration for one endpoint. All probabilities default to zero
/// and are clamped to `[0, 1]` at draw time.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EndpointFaults {
    /// Probability a request vanishes before dispatch.
    pub drop_prob: f64,
    /// Probability the endpoint answers with a transient 5xx-style error.
    pub error_prob: f64,
    /// Probability the response is delayed by [`EndpointFaults::delay`].
    pub delay_prob: f64,
    /// The injected response delay (counts against the caller's deadline).
    pub delay: SimDuration,
    /// Probability the response payload is corrupted on the wire.
    pub corrupt_prob: f64,
    /// Scheduled outage windows `[from, until)` during which every call
    /// fails immediately with [`CallFailure::Down`].
    pub outages: Vec<(SimTime, SimTime)>,
}

impl Default for EndpointFaults {
    fn default() -> Self {
        EndpointFaults {
            drop_prob: 0.0,
            error_prob: 0.0,
            delay_prob: 0.0,
            delay: SimDuration::ZERO,
            corrupt_prob: 0.0,
            outages: Vec::new(),
        }
    }
}

impl EndpointFaults {
    /// No faults at all (the explicit no-op).
    pub fn none() -> Self {
        Self::default()
    }

    /// Set the request-drop probability.
    pub fn with_drop(mut self, p: f64) -> Self {
        self.drop_prob = p;
        self
    }

    /// Set the transient-error probability.
    pub fn with_error(mut self, p: f64) -> Self {
        self.error_prob = p;
        self
    }

    /// Delay responses by `delay` with probability `p`.
    pub fn with_delay(mut self, p: f64, delay: SimDuration) -> Self {
        self.delay_prob = p;
        self.delay = delay;
        self
    }

    /// Set the response-corruption probability.
    pub fn with_corrupt(mut self, p: f64) -> Self {
        self.corrupt_prob = p;
        self
    }

    /// Schedule an outage window `[from, until)`.
    pub fn with_outage(mut self, from: SimTime, until: SimTime) -> Self {
        self.outages.push((from, until));
        self
    }

    /// True when this configuration can never inject anything.
    pub fn is_quiet(&self) -> bool {
        self.drop_prob <= 0.0
            && self.error_prob <= 0.0
            && self.delay_prob <= 0.0
            && self.corrupt_prob <= 0.0
            && self.outages.is_empty()
    }

    /// True when `now` falls inside a scheduled outage window.
    pub fn down_at(&self, now: SimTime) -> bool {
        self.outages
            .iter()
            .any(|&(from, until)| from <= now && now < until)
    }
}

/// A seeded, per-endpoint fault schedule for a whole run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    seed: u64,
    endpoints: BTreeMap<String, EndpointFaults>,
}

impl FaultPlan {
    /// An empty plan (injects nothing) with its own RNG seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            endpoints: BTreeMap::new(),
        }
    }

    /// Builder-style: attach `faults` to `endpoint`.
    pub fn with_endpoint(mut self, endpoint: &str, faults: EndpointFaults) -> FaultPlan {
        self.endpoints.insert(endpoint.to_owned(), faults);
        self
    }

    /// Attach (or replace) `faults` at `endpoint`.
    pub fn set(&mut self, endpoint: &str, faults: EndpointFaults) {
        self.endpoints.insert(endpoint.to_owned(), faults);
    }

    /// The faults configured for `endpoint`, if any.
    pub fn get(&self, endpoint: &str) -> Option<&EndpointFaults> {
        self.endpoints.get(endpoint)
    }

    /// The plan's own RNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True when no endpoint can ever see a fault.
    pub fn is_quiet(&self) -> bool {
        self.endpoints.values().all(EndpointFaults::is_quiet)
    }

    /// The configured endpoints and their fault settings.
    pub fn endpoints(&self) -> impl Iterator<Item = (&str, &EndpointFaults)> {
        self.endpoints.iter().map(|(k, v)| (k.as_str(), v))
    }
}

/// What the injector did to one endpoint, cumulatively.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EndpointStats {
    /// Attempts that reached the injector for this endpoint.
    pub attempts: u64,
    /// Attempts rejected by a scheduled outage.
    pub outage_rejections: u64,
    /// Requests dropped before dispatch.
    pub drops: u64,
    /// Transient 5xx-style errors returned.
    pub transient_errors: u64,
    /// Responses delayed.
    pub delays: u64,
    /// Response payloads corrupted.
    pub corruptions: u64,
}

impl EndpointStats {
    /// Total faults injected at this endpoint.
    pub fn injected(&self) -> u64 {
        self.outage_rejections + self.drops + self.transient_errors + self.delays + self.corruptions
    }
}

/// Applies one [`FaultPlan`] to calls over a [`MessageBus`]. See module docs.
///
/// Serializable in full (plan, RNG position, stats): restoring a serialized
/// injector resumes the exact fault schedule the original would have run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SimRng,
    stats: BTreeMap<String, EndpointStats>,
}

impl FaultInjector {
    /// An injector for `plan`, seeded from the plan's own seed.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        let rng = SimRng::seed_from(plan.seed);
        FaultInjector {
            plan,
            rng,
            stats: BTreeMap::new(),
        }
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Cumulative per-endpoint injection stats.
    pub fn stats(&self) -> &BTreeMap<String, EndpointStats> {
        &self.stats
    }

    /// Issue `body` to `endpoint` at simulated instant `now`, applying the
    /// plan. On success, returns the response plus the injected latency
    /// (zero unless a delay fired). Endpoints the plan leaves quiet pass
    /// through without any RNG draw.
    ///
    /// Generic over the [`Transport`]: fault *decisions* (every RNG draw,
    /// in a fixed order) happen here, identically on any transport, which
    /// is what keeps chaos runs byte-identical in-process vs. over
    /// sockets. A transport may additionally *realize* a decided
    /// drop/outage physically via its `realize_*` hooks — a connection
    /// reset or teardown on the socket plane, a no-op on the in-process
    /// oracle — without perturbing accounting or the draw sequence.
    pub fn call<T: Transport>(
        &mut self,
        bus: &mut T,
        now: SimTime,
        endpoint: &str,
        body: Vec<u8>,
    ) -> Result<(Response, SimDuration), CallFailure> {
        let passthrough = match self.plan.endpoints.get(endpoint) {
            None => true,
            Some(f) => f.is_quiet(),
        };
        if passthrough {
            return bus
                .call(endpoint, body)
                .map(|r| (r, SimDuration::ZERO))
                .map_err(bus_failure);
        }
        let faults = self
            .plan
            .endpoints
            .get(endpoint)
            .expect("checked above")
            .clone();
        let stats = self.stats.entry(endpoint.to_owned()).or_default();
        stats.attempts += 1;
        if faults.down_at(now) {
            stats.outage_rejections += 1;
            bus.realize_outage(endpoint);
            return Err(CallFailure::Down);
        }
        if faults.drop_prob > 0.0 && self.rng.chance(faults.drop_prob) {
            stats.drops += 1;
            bus.realize_drop(endpoint);
            return Err(CallFailure::Dropped);
        }
        if faults.error_prob > 0.0 && self.rng.chance(faults.error_prob) {
            stats.transient_errors += 1;
            return Err(CallFailure::Transient);
        }
        let latency = if faults.delay_prob > 0.0 && self.rng.chance(faults.delay_prob) {
            stats.delays += 1;
            faults.delay
        } else {
            SimDuration::ZERO
        };
        let mut response = bus.call(endpoint, body).map_err(bus_failure)?;
        if faults.corrupt_prob > 0.0 && self.rng.chance(faults.corrupt_prob) {
            stats.corruptions += 1;
            if response.body.is_empty() {
                response.body.push(0xFF);
            } else {
                let i = self.rng.uniform_usize(0, response.body.len());
                response.body[i] ^= 0xFF;
            }
        }
        Ok((response, latency))
    }
}

fn bus_failure(e: BusError) -> CallFailure {
    CallFailure::Bus(e.to_string())
}

/// A process-level fault against one domain controller server, physically
/// realized by the supervisor (`ovnes_core::supervise`): the difference
/// from [`EndpointFaults`] is that these kill, hang, or replace the server
/// *process*, not individual calls.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProcessFault {
    /// Kill the server — connections die, the port is released — and
    /// restart a fresh incarnation from its exported state on a new port.
    Crash,
    /// Crash with a request in flight: the incarnation term is fenced
    /// first, a doomed request still reaches the old server, and its
    /// stale-term response must be generated and rejected before the
    /// teardown — the zombie-connection hazard, made provable.
    CrashMidRequest,
    /// The process hangs (dispatch stalls, connections stay open) for a
    /// bounded wall-clock hold, then resumes. No state is lost, but every
    /// call in the window runs into its read deadline.
    Hang {
        /// Wall-clock hold in milliseconds.
        hold_ms: u64,
    },
}

/// One scheduled process fault: which domain's controller, at which epoch
/// boundary (before the epoch with that index runs), and what happens.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashEvent {
    /// The domain whose controller is hit (`"ran"`, `"transport"`, …).
    pub domain: String,
    /// Epoch index (completed-epoch count) at which the fault fires.
    pub epoch: u64,
    /// What happens to the process.
    pub fault: ProcessFault,
}

/// A seeded, serializable schedule of process-level faults — the
/// [`FaultPlan`] family extended from call-level to process-level chaos.
/// Like its sibling, the plan is pure data: the supervisor realizes it,
/// and the same seed always produces the same storm.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashPlan {
    seed: u64,
    events: Vec<CrashEvent>,
}

impl CrashPlan {
    /// An empty plan (no process ever faults) with its own RNG seed.
    pub fn new(seed: u64) -> CrashPlan {
        CrashPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// Builder-style: schedule `fault` against `domain` at `epoch`.
    pub fn with_fault(mut self, domain: &str, epoch: u64, fault: ProcessFault) -> CrashPlan {
        self.events.push(CrashEvent {
            domain: domain.to_owned(),
            epoch,
            fault,
        });
        self.events
            .sort_by(|a, b| (a.epoch, a.domain.as_str()).cmp(&(b.epoch, b.domain.as_str())));
        self
    }

    /// Schedule a clean kill-and-restart of `domain` at `epoch`.
    pub fn with_crash(self, domain: &str, epoch: u64) -> CrashPlan {
        self.with_fault(domain, epoch, ProcessFault::Crash)
    }

    /// Schedule a crash of `domain` at `epoch` landing mid-request.
    pub fn with_crash_mid_request(self, domain: &str, epoch: u64) -> CrashPlan {
        self.with_fault(domain, epoch, ProcessFault::CrashMidRequest)
    }

    /// Schedule a `hold_ms`-millisecond hang of `domain` at `epoch`.
    pub fn with_hang(self, domain: &str, epoch: u64, hold_ms: u64) -> CrashPlan {
        self.with_fault(domain, epoch, ProcessFault::Hang { hold_ms })
    }

    /// Seed a crash storm: `crashes_per_domain` kill-and-restarts of every
    /// domain at epochs drawn uniformly from `[first_epoch, last_epoch]`,
    /// with the first domain's earliest crash landing mid-request. Drawn
    /// from the plan's own seed, so the storm is as reproducible as a
    /// clean run.
    ///
    /// # Panics
    /// Panics if the epoch range cannot hold `crashes_per_domain` distinct
    /// epochs.
    pub fn with_random_storm(
        mut self,
        domains: &[&str],
        crashes_per_domain: usize,
        first_epoch: u64,
        last_epoch: u64,
    ) -> CrashPlan {
        assert!(last_epoch >= first_epoch, "empty storm window");
        let span = (last_epoch - first_epoch + 1) as usize;
        assert!(
            span >= crashes_per_domain,
            "storm window of {span} epochs cannot hold {crashes_per_domain} distinct crashes"
        );
        let mut rng = SimRng::seed_from(self.seed ^ 0xC4A5_4057_04A1_1E5);
        for (d, domain) in domains.iter().enumerate() {
            let mut epochs: Vec<u64> = Vec::new();
            while epochs.len() < crashes_per_domain {
                let e = first_epoch + rng.uniform_usize(0, span) as u64;
                if !epochs.contains(&e) {
                    epochs.push(e);
                }
            }
            epochs.sort_unstable();
            for (k, &epoch) in epochs.iter().enumerate() {
                let fault = if d == 0 && k == 0 {
                    ProcessFault::CrashMidRequest
                } else {
                    ProcessFault::Crash
                };
                self.events.push(CrashEvent {
                    domain: (*domain).to_owned(),
                    epoch,
                    fault,
                });
            }
        }
        self.events
            .sort_by(|a, b| (a.epoch, a.domain.as_str()).cmp(&(b.epoch, b.domain.as_str())));
        self
    }

    /// The plan's own RNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Every scheduled event, ascending by (epoch, domain).
    pub fn events(&self) -> &[CrashEvent] {
        &self.events
    }

    /// The events due at `epoch`, in schedule order.
    pub fn events_at(&self, epoch: u64) -> impl Iterator<Item = &CrashEvent> {
        self.events.iter().filter(move |e| e.epoch == epoch)
    }

    /// True when no process ever faults.
    pub fn is_quiet(&self) -> bool {
        self.events.is_empty()
    }
}

/// Client-side retry policy for control-plane calls: bounded attempts,
/// exponential backoff with optional deterministic jitter, and a per-call
/// deadline the cumulative elapsed time (injected latencies + backoffs)
/// must respect.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum attempts per call (≥ 1; the first attempt counts).
    pub max_attempts: u32,
    /// Backoff before the second attempt.
    pub base_backoff: SimDuration,
    /// Backoff growth factor per retry (values below 1 are treated as 1).
    pub multiplier: f64,
    /// Cap on any single backoff.
    pub max_backoff: SimDuration,
    /// Per-call deadline on cumulative elapsed time.
    pub deadline: SimDuration,
    /// Jitter fraction: the waited backoff is drawn uniformly from
    /// `[b, b·(1+jitter)]` (clamped to `[0, 1]`).
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: SimDuration::from_millis(100),
            multiplier: 2.0,
            max_backoff: SimDuration::from_secs(2),
            deadline: SimDuration::from_secs(10),
            jitter: 0.1,
        }
    }
}

impl RetryPolicy {
    /// The nominal (un-jittered) backoff after `attempt` failures
    /// (`attempt ≥ 1`): `min(base · multiplier^(attempt-1), max_backoff)`.
    /// Monotone non-decreasing in `attempt`.
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        let n = attempt.max(1) - 1;
        let grown = self.base_backoff.as_secs_f64() * self.multiplier.max(1.0).powi(n as i32);
        SimDuration::from_secs_f64(grown).min(self.max_backoff)
    }

    /// The backoff actually waited after `attempt` failures: the nominal
    /// backoff stretched by a deterministic jitter draw from `rng`.
    pub fn jittered_backoff(&self, attempt: u32, rng: &mut SimRng) -> SimDuration {
        let b = self.backoff(attempt);
        let extra = b.as_secs_f64() * self.jitter.clamp(0.0, 1.0) * rng.uniform();
        b + SimDuration::from_secs_f64(extra)
    }

    /// The nominal backoff waits a maximally unlucky call performs: one
    /// entry per retry that fits both the attempt bound and the deadline.
    pub fn nominal_schedule(&self) -> Vec<SimDuration> {
        let mut waits = Vec::new();
        let mut elapsed = SimDuration::ZERO;
        for attempt in 1..self.max_attempts {
            let b = self.backoff(attempt);
            if elapsed + b > self.deadline {
                break;
            }
            elapsed += b;
            waits.push(b);
        }
        waits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::MessageBus;
    use crate::envelope::Status;

    fn echo_bus() -> MessageBus {
        let mut bus = MessageBus::new();
        bus.register("echo", |req| Response::ok(req.id, req.body));
        bus
    }

    #[test]
    fn quiet_plan_is_a_passthrough() {
        let mut plain = echo_bus();
        let mut wrapped = echo_bus();
        let mut inj =
            FaultInjector::new(FaultPlan::new(1).with_endpoint("echo", EndpointFaults::none()));
        for i in 0..20u8 {
            let body = vec![i, i + 1];
            let a = plain.call("echo", body.clone()).unwrap();
            let (b, lat) = inj
                .call(&mut wrapped, SimTime::from_secs(i as u64), "echo", body)
                .unwrap();
            assert_eq!(a, b);
            assert_eq!(lat, SimDuration::ZERO);
        }
        assert_eq!(plain.served("echo"), wrapped.served("echo"));
        assert!(inj.stats().is_empty(), "no draws, no stats");
    }

    #[test]
    fn outage_window_is_exact_and_drawless() {
        let plan = FaultPlan::new(2).with_endpoint(
            "echo",
            EndpointFaults::none().with_outage(SimTime::from_secs(10), SimTime::from_secs(20)),
        );
        let mut inj = FaultInjector::new(plan);
        let mut bus = echo_bus();
        assert!(inj
            .call(&mut bus, SimTime::from_secs(9), "echo", vec![])
            .is_ok());
        assert_eq!(
            inj.call(&mut bus, SimTime::from_secs(10), "echo", vec![]),
            Err(CallFailure::Down)
        );
        assert_eq!(
            inj.call(&mut bus, SimTime::from_secs(19), "echo", vec![]),
            Err(CallFailure::Down)
        );
        assert!(inj
            .call(&mut bus, SimTime::from_secs(20), "echo", vec![])
            .is_ok());
        assert_eq!(inj.stats()["echo"].outage_rejections, 2);
        // Down requests never reached the handler.
        assert_eq!(bus.served("echo"), 2);
    }

    #[test]
    fn drops_and_errors_happen_at_roughly_the_configured_rate() {
        let plan = FaultPlan::new(3).with_endpoint(
            "echo",
            EndpointFaults::none().with_drop(0.3).with_error(0.2),
        );
        let mut inj = FaultInjector::new(plan);
        let mut bus = echo_bus();
        let mut drops = 0;
        let mut errors = 0;
        let n = 2000;
        for i in 0..n {
            match inj.call(&mut bus, SimTime::from_secs(i), "echo", vec![]) {
                Err(CallFailure::Dropped) => drops += 1,
                Err(CallFailure::Transient) => errors += 1,
                Err(e) => panic!("unexpected {e}"),
                Ok(_) => {}
            }
        }
        let drop_rate = drops as f64 / n as f64;
        // Errors are drawn only on the ~70% of attempts that survive the drop.
        let error_rate = errors as f64 / (n - drops) as f64;
        assert!((drop_rate - 0.3).abs() < 0.04, "drop rate {drop_rate}");
        assert!((error_rate - 0.2).abs() < 0.04, "error rate {error_rate}");
        assert_eq!(bus.served("echo"), n - drops - errors as u64);
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let plan = FaultPlan::new(seed).with_endpoint(
                "echo",
                EndpointFaults::none()
                    .with_drop(0.25)
                    .with_delay(0.25, SimDuration::from_millis(50))
                    .with_corrupt(0.1),
            );
            let mut inj = FaultInjector::new(plan);
            let mut bus = echo_bus();
            (0..200u64)
                .map(|i| {
                    format!(
                        "{:?}",
                        inj.call(&mut bus, SimTime::from_secs(i), "echo", vec![i as u8])
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn corruption_mangles_the_payload() {
        let plan =
            FaultPlan::new(4).with_endpoint("echo", EndpointFaults::none().with_corrupt(1.0));
        let mut inj = FaultInjector::new(plan);
        let mut bus = echo_bus();
        let (resp, _) = inj
            .call(&mut bus, SimTime::ZERO, "echo", b"payload".to_vec())
            .unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert_ne!(resp.body, b"payload", "exactly one byte flipped");
        assert_eq!(resp.body.len(), b"payload".len());
        // Empty bodies still end up visibly corrupt.
        let (resp, _) = inj.call(&mut bus, SimTime::ZERO, "echo", vec![]).unwrap();
        assert_eq!(resp.body, vec![0xFF]);
    }

    #[test]
    fn delay_reports_injected_latency() {
        let d = SimDuration::from_millis(250);
        let plan =
            FaultPlan::new(5).with_endpoint("echo", EndpointFaults::none().with_delay(1.0, d));
        let mut inj = FaultInjector::new(plan);
        let mut bus = echo_bus();
        let (_, lat) = inj.call(&mut bus, SimTime::ZERO, "echo", vec![]).unwrap();
        assert_eq!(lat, d);
        assert_eq!(inj.stats()["echo"].delays, 1);
    }

    #[test]
    fn backoff_is_monotone_and_capped() {
        let p = RetryPolicy::default();
        let mut prev = SimDuration::ZERO;
        for attempt in 1..=16 {
            let b = p.backoff(attempt);
            assert!(b >= prev, "attempt {attempt}: {b:?} < {prev:?}");
            assert!(b <= p.max_backoff);
            prev = b;
        }
        assert_eq!(p.backoff(1), SimDuration::from_millis(100));
        assert_eq!(p.backoff(2), SimDuration::from_millis(200));
        assert_eq!(p.backoff(10), p.max_backoff);
    }

    #[test]
    fn jittered_backoff_stays_in_band() {
        let p = RetryPolicy::default();
        let mut rng = SimRng::seed_from(11);
        for attempt in 1..=8 {
            let b = p.backoff(attempt);
            let j = p.jittered_backoff(attempt, &mut rng);
            assert!(j >= b);
            assert!(j.as_secs_f64() <= b.as_secs_f64() * (1.0 + p.jitter) + 1e-6);
        }
    }

    #[test]
    fn nominal_schedule_respects_attempts_and_deadline() {
        let p = RetryPolicy {
            max_attempts: 10,
            deadline: SimDuration::from_millis(500),
            ..RetryPolicy::default()
        };
        let waits = p.nominal_schedule();
        // 100 + 200 = 300 fits; +400 would blow the 500 ms deadline.
        assert_eq!(waits.len(), 2);
        let total: u64 = waits.iter().map(|w| w.as_micros()).sum();
        assert!(total <= p.deadline.as_micros());
    }

    #[test]
    fn crash_plan_storm_is_deterministic_and_covers_every_domain() {
        let storm = |seed: u64| {
            CrashPlan::new(seed).with_random_storm(&["ran", "transport", "cloud"], 2, 3, 20)
        };
        assert_eq!(storm(42), storm(42), "same seed, same storm");
        assert_ne!(storm(42), storm(43));

        let plan = storm(42);
        assert_eq!(plan.events().len(), 6);
        for domain in ["ran", "transport", "cloud"] {
            let kills = plan.events().iter().filter(|e| e.domain == domain).count();
            assert!(kills >= 2, "{domain} must be killed at least twice");
        }
        let mid = plan
            .events()
            .iter()
            .filter(|e| e.fault == ProcessFault::CrashMidRequest)
            .count();
        assert_eq!(mid, 1, "exactly one crash lands mid-request");
        for e in plan.events() {
            assert!((3..=20).contains(&e.epoch));
        }
        // Sorted by (epoch, domain) so realization order is canonical.
        let keys: Vec<_> = plan
            .events()
            .iter()
            .map(|e| (e.epoch, e.domain.clone()))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn crash_plan_builders_and_epoch_lookup() {
        let plan = CrashPlan::new(7)
            .with_crash("cloud", 9)
            .with_hang("ran", 4, 250)
            .with_crash_mid_request("transport", 4);
        assert!(!plan.is_quiet());
        assert!(CrashPlan::new(7).is_quiet());
        assert_eq!(plan.events_at(3).count(), 0);
        let at4: Vec<_> = plan.events_at(4).collect();
        assert_eq!(at4.len(), 2);
        // Canonical order within an epoch is by domain.
        assert_eq!(at4[0].domain, "ran");
        assert_eq!(at4[0].fault, ProcessFault::Hang { hold_ms: 250 });
        assert_eq!(at4[1].domain, "transport");
        assert_eq!(plan.events_at(9).next().unwrap().fault, ProcessFault::Crash);

        let j = serde_json::to_string(&plan).unwrap();
        assert_eq!(serde_json::from_str::<CrashPlan>(&j).unwrap(), plan);
    }

    #[test]
    fn plan_serde_round_trips() {
        let plan = FaultPlan::new(9).with_endpoint(
            "ran/health",
            EndpointFaults::none()
                .with_drop(0.2)
                .with_outage(SimTime::from_secs(60), SimTime::from_secs(120)),
        );
        let j = serde_json::to_string(&plan).unwrap();
        assert_eq!(serde_json::from_str::<FaultPlan>(&j).unwrap(), plan);
        assert!(!plan.is_quiet());
        assert!(FaultPlan::new(1).is_quiet());
    }
}
