//! The in-process message bus.
//!
//! Registered handlers play the role of the controllers' REST servers; the
//! orchestrator plays the client. [`MessageBus::call`] serializes the
//! request envelope to bytes, hands the *bytes* to the handler, and returns
//! the handler's bytes deserialized — so both directions genuinely cross a
//! wire-format boundary, as in the physical testbed.

use crate::envelope::{Request, Response};
use std::collections::BTreeMap;
use std::fmt;

/// Bus-level failures (distinct from domain rejections, which come back as
/// [`Status::Rejected`](crate::envelope::Status::Rejected) responses).
#[derive(Debug)]
pub enum BusError {
    /// No handler registered at the endpoint.
    NoSuchEndpoint(String),
    /// The envelope failed to (de)serialize.
    Envelope(serde_json::Error),
}

impl fmt::Display for BusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusError::NoSuchEndpoint(e) => write!(f, "no handler at {e:?}"),
            BusError::Envelope(e) => write!(f, "envelope: {e}"),
        }
    }
}

impl std::error::Error for BusError {}

type Handler = Box<dyn FnMut(Request) -> Response>;

/// Endpoint-dispatched request/response bus. See module docs.
#[derive(Default)]
pub struct MessageBus {
    handlers: BTreeMap<String, Handler>,
    next_id: u64,
    requests_served: BTreeMap<String, u64>,
}

impl MessageBus {
    /// An empty bus.
    pub fn new() -> MessageBus {
        Self::default()
    }

    /// Register (or replace) the handler at `endpoint`.
    pub fn register(&mut self, endpoint: &str, handler: impl FnMut(Request) -> Response + 'static) {
        self.handlers.insert(endpoint.to_owned(), Box::new(handler));
    }

    /// True if `endpoint` has a handler.
    pub fn has_endpoint(&self, endpoint: &str) -> bool {
        self.handlers.contains_key(endpoint)
    }

    /// Issue a request: wrap `body` in an envelope, serialize it across the
    /// "wire", dispatch, and return the deserialized response.
    pub fn call(&mut self, endpoint: &str, body: Vec<u8>) -> Result<Response, BusError> {
        let id = self.next_id;
        self.next_id += 1;
        let request = Request {
            id,
            endpoint: endpoint.to_owned(),
            body,
        };
        // Serialize → bytes → deserialize: the wire.
        let wire = serde_json::to_vec(&request).map_err(BusError::Envelope)?;
        let delivered: Request = serde_json::from_slice(&wire).map_err(BusError::Envelope)?;

        let handler = self
            .handlers
            .get_mut(endpoint)
            .ok_or_else(|| BusError::NoSuchEndpoint(endpoint.to_owned()))?;
        let response = handler(delivered);

        let wire_back = serde_json::to_vec(&response).map_err(BusError::Envelope)?;
        let response: Response = serde_json::from_slice(&wire_back).map_err(BusError::Envelope)?;
        *self.requests_served.entry(endpoint.to_owned()).or_insert(0) += 1;
        Ok(response)
    }

    /// Requests served per endpoint (for the dashboard's API stats).
    pub fn served(&self, endpoint: &str) -> u64 {
        self.requests_served.get(endpoint).copied().unwrap_or(0)
    }

    /// The bus's serializable accounting (correlation-id counter and
    /// per-endpoint served counts). Handlers are closures and deliberately
    /// not part of this: a restored world re-registers them, and the repo's
    /// handlers are all self-contained, so re-registration is exact.
    pub fn export_state(&self) -> BusState {
        BusState {
            next_id: self.next_id,
            requests_served: self.requests_served.clone(),
        }
    }

    /// Overwrite the accounting captured by [`MessageBus::export_state`].
    /// Registered handlers are untouched.
    pub fn restore_state(&mut self, state: &BusState) {
        self.next_id = state.next_id;
        self.requests_served = state.requests_served.clone();
    }
}

/// Serializable accounting of a [`MessageBus`] (everything except the
/// handler closures — see [`MessageBus::export_state`]).
#[derive(Clone, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct BusState {
    /// Next correlation id to assign.
    pub next_id: u64,
    /// Requests served per endpoint.
    pub requests_served: BTreeMap<String, u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode, encode};
    use crate::envelope::Status;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn dispatches_to_registered_handler() {
        let mut bus = MessageBus::new();
        bus.register("echo", |req| Response::ok(req.id, req.body));
        let resp = bus.call("echo", b"payload".to_vec()).unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.body, b"payload");
        assert!(bus.has_endpoint("echo"));
        assert!(!bus.has_endpoint("nope"));
    }

    #[test]
    fn correlation_ids_increment_and_echo() {
        let mut bus = MessageBus::new();
        bus.register("e", |req| Response::ok(req.id, vec![]));
        let a = bus.call("e", vec![]).unwrap();
        let b = bus.call("e", vec![]).unwrap();
        assert_eq!(a.id, 0);
        assert_eq!(b.id, 1);
    }

    #[test]
    fn unknown_endpoint_errors() {
        let mut bus = MessageBus::new();
        assert!(matches!(
            bus.call("missing", vec![]),
            Err(BusError::NoSuchEndpoint(_))
        ));
    }

    #[test]
    fn typed_payloads_survive_the_wire() {
        use crate::messages::{RanCommand, RanReply};
        use ovnes_model::{Prbs, SliceId};

        let mut bus = MessageBus::new();
        let log: Rc<RefCell<Vec<RanCommand>>> = Rc::new(RefCell::new(Vec::new()));
        let log_in = log.clone();
        bus.register("ran/command", move |req| {
            match decode::<RanCommand>(&req.body) {
                Ok(cmd) => {
                    log_in.borrow_mut().push(cmd);
                    Response::ok(req.id, encode(&RanReply::Done).unwrap())
                }
                Err(e) => Response::error(req.id, &e.to_string()),
            }
        });

        let cmd = RanCommand::Resize {
            slice: SliceId::new(3),
            reserved: Prbs::new(17),
        };
        let resp = bus.call("ran/command", encode(&cmd).unwrap()).unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(decode::<RanReply>(&resp.body).unwrap(), RanReply::Done);
        assert_eq!(log.borrow().as_slice(), &[cmd]);
    }

    #[test]
    fn handler_decode_failure_becomes_error_status() {
        use crate::messages::RanCommand;
        let mut bus = MessageBus::new();
        bus.register("ran/command", |req| match decode::<RanCommand>(&req.body) {
            Ok(_) => Response::ok(req.id, vec![]),
            Err(e) => Response::error(req.id, &e.to_string()),
        });
        let resp = bus.call("ran/command", b"garbage".to_vec()).unwrap();
        assert_eq!(resp.status, Status::Error);
    }

    #[test]
    fn served_counts_per_endpoint() {
        let mut bus = MessageBus::new();
        bus.register("a", |req| Response::ok(req.id, vec![]));
        bus.register("b", |req| Response::ok(req.id, vec![]));
        bus.call("a", vec![]).unwrap();
        bus.call("a", vec![]).unwrap();
        bus.call("b", vec![]).unwrap();
        assert_eq!(bus.served("a"), 2);
        assert_eq!(bus.served("b"), 1);
        assert_eq!(bus.served("c"), 0);
    }

    #[test]
    fn re_registering_replaces_handler() {
        let mut bus = MessageBus::new();
        bus.register("x", |req| Response::ok(req.id, b"v1".to_vec()));
        bus.register("x", |req| Response::ok(req.id, b"v2".to_vec()));
        assert_eq!(bus.call("x", vec![]).unwrap().body, b"v2");
    }
}
