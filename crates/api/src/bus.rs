//! The in-process message bus.
//!
//! Registered handlers play the role of the controllers' REST servers; the
//! orchestrator plays the client. [`MessageBus::call`] serializes the
//! request envelope to bytes, hands the *bytes* to the handler, and returns
//! the handler's bytes deserialized — so both directions genuinely cross a
//! wire-format boundary, as in the physical testbed.

use crate::envelope::{Request, Response};
use std::collections::BTreeMap;
use std::fmt;

/// Bus-level failures (distinct from domain rejections, which come back as
/// [`Status::Rejected`](crate::envelope::Status::Rejected) responses).
#[derive(Debug)]
pub enum BusError {
    /// No handler registered at the endpoint.
    NoSuchEndpoint(String),
    /// The envelope failed to (de)serialize.
    Envelope(serde_json::Error),
    /// The underlying socket transport failed (connect refused, reset,
    /// truncated stream). Never produced by the in-process bus.
    Transport(String),
    /// A wall-clock deadline expired before the transport produced a
    /// response (connect or read timeout against a hung server). Distinct
    /// from [`BusError::Transport`] so callers can tell "the server is
    /// gone" from "the server is stalled". Never produced by the
    /// in-process bus.
    Deadline(String),
}

impl fmt::Display for BusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusError::NoSuchEndpoint(e) => write!(f, "no handler at {e:?}"),
            BusError::Envelope(e) => write!(f, "envelope: {e}"),
            BusError::Transport(e) => write!(f, "transport: {e}"),
            BusError::Deadline(e) => write!(f, "deadline: {e}"),
        }
    }
}

impl std::error::Error for BusError {}

// `Send` so a world owning a bus (orchestrator → control plane) can be
// sharded across the federation's worker threads; the repo's handlers are
// plain fns or closures over owned data, which satisfy it for free.
type Handler = Box<dyn FnMut(Request) -> Response + Send>;

/// Endpoint-dispatched request/response bus. See module docs.
#[derive(Default)]
pub struct MessageBus {
    handlers: BTreeMap<String, Handler>,
    next_id: u64,
    requests_served: BTreeMap<String, u64>,
}

impl MessageBus {
    /// An empty bus.
    pub fn new() -> MessageBus {
        Self::default()
    }

    /// Register (or replace) the handler at `endpoint`.
    pub fn register(
        &mut self,
        endpoint: &str,
        handler: impl FnMut(Request) -> Response + Send + 'static,
    ) {
        self.handlers.insert(endpoint.to_owned(), Box::new(handler));
    }

    /// True if `endpoint` has a handler.
    pub fn has_endpoint(&self, endpoint: &str) -> bool {
        self.handlers.contains_key(endpoint)
    }

    /// The registered endpoints, ascending (the bus's "routing table" —
    /// what a socket transport mirrors as its route map).
    pub fn endpoints(&self) -> impl Iterator<Item = &str> {
        self.handlers.keys().map(String::as_str)
    }

    /// Issue a request: wrap `body` in an envelope, serialize it across the
    /// "wire", dispatch, and return the deserialized response.
    ///
    /// A correlation id is consumed only when the request actually reaches a
    /// handler: a call that fails before dispatch (unknown endpoint, request
    /// envelope failure) leaves the id counter — and therefore every later
    /// call's id — untouched, so failed calls are invisible in
    /// [`MessageBus::export_state`]. `requests_served` is bumped *at
    /// dispatch*: a handler that ran is a request the endpoint served, even
    /// if its response envelope later fails to (de)serialize.
    pub fn call(&mut self, endpoint: &str, body: Vec<u8>) -> Result<Response, BusError> {
        if !self.handlers.contains_key(endpoint) {
            return Err(BusError::NoSuchEndpoint(endpoint.to_owned()));
        }
        let request = Request {
            id: self.next_id,
            endpoint: endpoint.to_owned(),
            body,
        };
        // Serialize → bytes → deserialize: the wire.
        let wire = serde_json::to_vec(&request).map_err(BusError::Envelope)?;
        let delivered: Request = serde_json::from_slice(&wire).map_err(BusError::Envelope)?;

        let handler = self.handlers.get_mut(endpoint).expect("checked above");
        self.next_id += 1;
        *self.requests_served.entry(endpoint.to_owned()).or_insert(0) += 1;
        let response = handler(delivered);

        let wire_back = serde_json::to_vec(&response).map_err(BusError::Envelope)?;
        let response: Response = serde_json::from_slice(&wire_back).map_err(BusError::Envelope)?;
        Ok(response)
    }

    /// Requests served per endpoint (for the dashboard's API stats).
    pub fn served(&self, endpoint: &str) -> u64 {
        self.requests_served.get(endpoint).copied().unwrap_or(0)
    }

    /// The bus's serializable accounting (correlation-id counter and
    /// per-endpoint served counts). Handlers are closures and deliberately
    /// not part of this: a restored world re-registers them, and the repo's
    /// handlers are all self-contained, so re-registration is exact.
    pub fn export_state(&self) -> BusState {
        BusState {
            next_id: self.next_id,
            requests_served: self.requests_served.clone(),
        }
    }

    /// Overwrite the accounting captured by [`MessageBus::export_state`].
    /// Registered handlers are untouched.
    pub fn restore_state(&mut self, state: &BusState) {
        self.next_id = state.next_id;
        self.requests_served = state.requests_served.clone();
    }
}

/// Serializable accounting of a [`MessageBus`] (everything except the
/// handler closures — see [`MessageBus::export_state`]).
#[derive(Clone, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct BusState {
    /// Next correlation id to assign.
    pub next_id: u64,
    /// Requests served per endpoint.
    pub requests_served: BTreeMap<String, u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode, encode};
    use crate::envelope::Status;
    use std::sync::{Arc, Mutex};

    #[test]
    fn dispatches_to_registered_handler() {
        let mut bus = MessageBus::new();
        bus.register("echo", |req| Response::ok(req.id, req.body));
        let resp = bus.call("echo", b"payload".to_vec()).unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.body, b"payload");
        assert!(bus.has_endpoint("echo"));
        assert!(!bus.has_endpoint("nope"));
    }

    #[test]
    fn correlation_ids_increment_and_echo() {
        let mut bus = MessageBus::new();
        bus.register("e", |req| Response::ok(req.id, vec![]));
        let a = bus.call("e", vec![]).unwrap();
        let b = bus.call("e", vec![]).unwrap();
        assert_eq!(a.id, 0);
        assert_eq!(b.id, 1);
    }

    #[test]
    fn unknown_endpoint_errors() {
        let mut bus = MessageBus::new();
        assert!(matches!(
            bus.call("missing", vec![]),
            Err(BusError::NoSuchEndpoint(_))
        ));
    }

    #[test]
    fn typed_payloads_survive_the_wire() {
        use crate::messages::{RanCommand, RanReply};
        use ovnes_model::{Prbs, SliceId};

        let mut bus = MessageBus::new();
        let log: Arc<Mutex<Vec<RanCommand>>> = Arc::new(Mutex::new(Vec::new()));
        let log_in = log.clone();
        bus.register("ran/command", move |req| {
            match decode::<RanCommand>(&req.body) {
                Ok(cmd) => {
                    log_in.lock().unwrap().push(cmd);
                    Response::ok(req.id, encode(&RanReply::Done).unwrap())
                }
                Err(e) => Response::error(req.id, &e.to_string()),
            }
        });

        let cmd = RanCommand::Resize {
            slice: SliceId::new(3),
            reserved: Prbs::new(17),
        };
        let resp = bus.call("ran/command", encode(&cmd).unwrap()).unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(decode::<RanReply>(&resp.body).unwrap(), RanReply::Done);
        assert_eq!(log.lock().unwrap().as_slice(), &[cmd]);
    }

    #[test]
    fn handler_decode_failure_becomes_error_status() {
        use crate::messages::RanCommand;
        let mut bus = MessageBus::new();
        bus.register("ran/command", |req| match decode::<RanCommand>(&req.body) {
            Ok(_) => Response::ok(req.id, vec![]),
            Err(e) => Response::error(req.id, &e.to_string()),
        });
        let resp = bus.call("ran/command", b"garbage".to_vec()).unwrap();
        assert_eq!(resp.status, Status::Error);
    }

    #[test]
    fn served_counts_per_endpoint() {
        let mut bus = MessageBus::new();
        bus.register("a", |req| Response::ok(req.id, vec![]));
        bus.register("b", |req| Response::ok(req.id, vec![]));
        bus.call("a", vec![]).unwrap();
        bus.call("a", vec![]).unwrap();
        bus.call("b", vec![]).unwrap();
        assert_eq!(bus.served("a"), 2);
        assert_eq!(bus.served("b"), 1);
        assert_eq!(bus.served("c"), 0);
    }

    #[test]
    fn failed_dispatch_leaves_state_unchanged() {
        // Regression: `call` used to increment `next_id` before checking the
        // endpoint existed, so a NoSuchEndpoint error leaked a correlation
        // id and shifted every later id.
        let mut bus = MessageBus::new();
        bus.register("real", |req| Response::ok(req.id, vec![]));
        bus.call("real", vec![]).unwrap();
        let before = bus.export_state();

        assert!(matches!(
            bus.call("missing", vec![]),
            Err(BusError::NoSuchEndpoint(_))
        ));
        assert_eq!(
            bus.export_state(),
            before,
            "a failed call must not consume a correlation id or count as served"
        );

        // The very next successful call gets the id the failed call would
        // have leaked.
        let resp = bus.call("real", vec![]).unwrap();
        assert_eq!(resp.id, 1);
        assert_eq!(bus.export_state().next_id, 2);
    }

    #[test]
    fn served_counts_every_dispatched_request() {
        // Regression: `requests_served` used to be bumped only after the
        // response survived re-serialization, so a handler that ran but
        // whose envelope round-trip failed was never counted. Serving is
        // counted at dispatch: the invariant is served == handler
        // invocations, across every status and around failed calls.
        let invocations = Arc::new(Mutex::new(0u64));
        let mut bus = MessageBus::new();
        let n = invocations.clone();
        bus.register("mixed", move |req| {
            *n.lock().unwrap() += 1;
            match req.body.first() {
                Some(0) => Response::ok(req.id, vec![]),
                Some(1) => Response::rejected(req.id, b"no capacity".to_vec()),
                _ => Response::error(req.id, "boom"),
            }
        });
        for byte in [0u8, 1, 2, 0, 1] {
            bus.call("mixed", vec![byte]).unwrap();
        }
        // Failed dispatches never reach the handler and never count.
        let _ = bus.call("absent", vec![]);
        assert_eq!(bus.served("mixed"), *invocations.lock().unwrap());
        assert_eq!(bus.served("mixed"), 5);
    }

    #[test]
    fn re_registering_replaces_handler() {
        let mut bus = MessageBus::new();
        bus.register("x", |req| Response::ok(req.id, b"v1".to_vec()));
        bus.register("x", |req| Response::ok(req.id, b"v2".to_vec()));
        assert_eq!(bus.call("x", vec![]).unwrap().body, b"v2");
    }
}
