//! # ovnes-api — the REST boundary between orchestrator and controllers
//!
//! In the demo, *"the gathered monitoring information is promptly fed to the
//! end-to-end orchestrator through REST APIs"* (§2), and resource commands
//! flow the other way. This crate preserves that serialization boundary
//! in-process: every message crosses the [`bus`] as JSON bytes — encoded,
//! transferred, decoded — exactly as a REST payload would, so schema
//! mismatches and encoding bugs surface in tests rather than being papered
//! over by shared memory.
//!
//! * [`codec`] — the JSON wire codec with versioning.
//! * [`envelope`] — request/response envelopes with correlation ids and
//!   HTTP-like status.
//! * [`messages`] — the typed API: per-domain commands and the monitoring
//!   report controllers push upstream.
//! * [`bus`] — the in-process message bus with per-endpoint handlers and
//!   request accounting.

pub mod bus;
pub mod codec;
pub mod envelope;
pub mod messages;

pub use bus::{BusError, MessageBus};
pub use codec::{decode, encode, CodecError, WIRE_VERSION};
pub use envelope::{Request, Response, Status};
pub use messages::{
    CloudCommand, CloudReply, MonitoringReport, RanCommand, RanReply, TransportCommand,
    TransportReply,
};
