//! # ovnes-api — the REST boundary between orchestrator and controllers
//!
//! In the demo, *"the gathered monitoring information is promptly fed to the
//! end-to-end orchestrator through REST APIs"* (§2), and resource commands
//! flow the other way. This crate preserves that serialization boundary
//! in-process: every message crosses the [`bus`] as JSON bytes — encoded,
//! transferred, decoded — exactly as a REST payload would, so schema
//! mismatches and encoding bugs surface in tests rather than being papered
//! over by shared memory.
//!
//! * [`codec`] — the JSON wire codec with versioning.
//! * [`envelope`] — request/response envelopes with correlation ids and
//!   HTTP-like status.
//! * [`messages`] — the typed API: per-domain commands and the monitoring
//!   report controllers push upstream.
//! * [`bus`] — the in-process message bus with per-endpoint handlers and
//!   request accounting.
//! * [`rpc`] — the same boundary made *physical*: length-prefixed framed
//!   TCP servers for the controllers ([`rpc::RpcServer`]) and the
//!   [`rpc::SocketBus`] client with pipelining and push-telemetry
//!   subscriptions.
//! * [`transport`] — the [`transport::Transport`] trait both buses
//!   implement, pinning the accounting contract that keeps run summaries
//!   byte-identical in-process vs. over sockets.
//! * [`fault`] — deterministic control-plane fault injection and the retry
//!   machinery that survives it, generic over the transport so decided
//!   drops/outages become real connection teardowns on the socket plane.
//! * [`substrate`] — deterministic *data-plane* fault schedules: link,
//!   switch, cell, and host outages the orchestrator's recovery pipeline
//!   reacts to.
//!
//! ## Fault injection in one example
//!
//! A [`FaultPlan`] declares, per endpoint, what the "network" does to
//! calls: drop them, delay them, answer 5xx, corrupt the payload, or go
//! dark on a schedule. The plan carries its own seed, so a chaos run is as
//! reproducible as a clean one:
//!
//! ```
//! use ovnes_api::{EndpointFaults, FaultInjector, FaultPlan, MessageBus, Response};
//! use ovnes_sim::{SimDuration, SimTime};
//!
//! let mut bus = MessageBus::new();
//! bus.register("ran/health", |req| Response::ok(req.id, vec![]));
//!
//! let plan = FaultPlan::new(42).with_endpoint(
//!     "ran/health",
//!     EndpointFaults::none()
//!         .with_drop(0.2)
//!         .with_delay(0.1, SimDuration::from_millis(200))
//!         .with_outage(SimTime::from_secs(60), SimTime::from_secs(120)),
//! );
//! let mut injector = FaultInjector::new(plan);
//! // Dropped/delayed per the seeded schedule; down in minute two.
//! let _ = injector.call(&mut bus, SimTime::ZERO, "ran/health", vec![]);
//! ```
//!
//! Endpoints a plan leaves out (or configures with all-zero probabilities)
//! pass through byte-identically with no RNG draws, so a quiet plan is an
//! exact no-op. [`RetryPolicy`] is the client side: bounded attempts,
//! exponential backoff with deterministic jitter, per-call deadline.

pub mod bus;
pub mod codec;
pub mod envelope;
pub mod fault;
pub mod messages;
pub mod rpc;
pub mod snapshot;
pub mod substrate;
pub mod transport;

pub use bus::{BusError, BusState, MessageBus};
pub use codec::{decode, encode, CodecError, WIRE_VERSION};
pub use envelope::{Request, Response, Status};
pub use fault::{
    CallFailure, CrashEvent, CrashPlan, EndpointFaults, EndpointStats, FaultInjector, FaultPlan,
    ProcessFault, RetryPolicy,
};
pub use rpc::{
    health_handler, monitoring_echo_handler, read_frame, register_control_endpoints, write_frame,
    BusDeadlines, ResumeHandle, Router, RpcServer, ServerStats, SocketBus, WireFrame,
    MAX_FRAME_BYTES,
};
pub use messages::{
    CloudCommand, CloudReply, MonitoringReport, RanCommand, RanReply, ResyncReport,
    TransportCommand, TransportReply,
};
pub use snapshot::{
    replay_bisect, sha256_hex, Divergence, SectionRef, SnapshotError, SnapshotManifest,
    SnapshotStore,
};
pub use substrate::{ElementSchedule, SubstrateElement, SubstrateFaultPlan};
pub use transport::{ControlTransport, Transport};
