//! The JSON wire codec.
//!
//! Every message the bus carries is wrapped in a versioned frame, so a
//! controller speaking an old schema fails loudly at decode time instead of
//! silently misreading fields — the failure mode REST deployments actually
//! have.

use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Wire format version; bumped on breaking schema changes.
pub const WIRE_VERSION: u32 = 1;

/// Codec failures.
#[derive(Debug)]
pub enum CodecError {
    /// The frame's version does not match [`WIRE_VERSION`].
    VersionMismatch {
        /// Version found in the frame.
        found: u32,
    },
    /// JSON (de)serialization failed.
    Json(serde_json::Error),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::VersionMismatch { found } => {
                write!(f, "wire version {found}, expected {WIRE_VERSION}")
            }
            CodecError::Json(e) => write!(f, "json: {e}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<serde_json::Error> for CodecError {
    fn from(e: serde_json::Error) -> Self {
        CodecError::Json(e)
    }
}

#[derive(Serialize, Deserialize)]
struct Frame<T> {
    version: u32,
    payload: T,
}

/// Encode `payload` into versioned JSON bytes.
pub fn encode<T: Serialize>(payload: &T) -> Result<Vec<u8>, CodecError> {
    Ok(serde_json::to_vec(&Frame {
        version: WIRE_VERSION,
        payload,
    })?)
}

/// Decode versioned JSON bytes back into a payload.
///
/// Single-pass: the frame is parsed once with the payload captured as a
/// raw, unvalidated slice of the input, the version is checked, and only
/// then is the payload's schema committed to. The ordering guarantee of
/// the old two-parse probe is preserved — a version mismatch is reported
/// before any payload *schema* error can surface (syntactically broken
/// JSON still fails the outer parse, exactly as it always did).
pub fn decode<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, CodecError> {
    let frame: Frame<&serde_json::value::RawValue> = serde_json::from_slice(bytes)?;
    if frame.version != WIRE_VERSION {
        return Err(CodecError::VersionMismatch {
            found: frame.version,
        });
    }
    Ok(serde_json::from_str(frame.payload.get())?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Ping {
        seq: u32,
        tag: String,
    }

    #[test]
    fn round_trip() {
        let msg = Ping {
            seq: 7,
            tag: "hello".into(),
        };
        let bytes = encode(&msg).unwrap();
        let back: Ping = decode(&bytes).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn version_mismatch_detected() {
        let bytes = br#"{"version": 999, "payload": {"seq": 1, "tag": "x"}}"#;
        match decode::<Ping>(bytes) {
            Err(CodecError::VersionMismatch { found: 999 }) => {}
            other => panic!("expected version mismatch, got {other:?}"),
        }
    }

    #[test]
    fn schema_mismatch_is_a_json_error() {
        let bytes = encode(&Ping {
            seq: 1,
            tag: "x".into(),
        })
        .unwrap();
        #[derive(Deserialize, Debug)]
        struct Other {
            #[allow(dead_code)]
            different: bool,
        }
        assert!(matches!(decode::<Other>(&bytes), Err(CodecError::Json(_))));
    }

    #[test]
    fn version_mismatch_wins_over_payload_schema_error() {
        // The single-pass decode must preserve the two-parse probe's
        // ordering guarantee: an old/new peer is reported as a version
        // mismatch even when its payload also fails our schema.
        let bytes = br#"{"version": 2, "payload": {"unknown_field": [1, 2]}}"#;
        match decode::<Ping>(bytes) {
            Err(CodecError::VersionMismatch { found: 2 }) => {}
            other => panic!("expected version mismatch first, got {other:?}"),
        }
    }

    #[test]
    fn syntactically_broken_payload_is_a_json_error_regardless_of_version() {
        // Syntax errors fail the outer parse before the version check can
        // run — identical to the old behavior, where the probe parse also
        // had to scan the full document.
        let bytes = br#"{"version": 999, "payload": {"seq": }}"#;
        assert!(matches!(decode::<Ping>(bytes), Err(CodecError::Json(_))));
    }

    #[test]
    fn good_version_bad_schema_reports_the_payload_error() {
        let bytes = br#"{"version": 1, "payload": {"not_ping": true}}"#;
        assert!(matches!(decode::<Ping>(bytes), Err(CodecError::Json(_))));
    }

    #[test]
    fn garbage_is_a_json_error() {
        assert!(matches!(
            decode::<Ping>(b"not json"),
            Err(CodecError::Json(_))
        ));
    }

    #[test]
    fn errors_display() {
        let e = CodecError::VersionMismatch { found: 2 };
        assert!(e.to_string().contains("wire version 2"));
    }
}
