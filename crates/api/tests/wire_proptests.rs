//! Property tests for the framed wire codec: every message enum in
//! `ovnes_api::messages` survives the full journey a socket call takes —
//! versioned JSON envelope ([`encode`]/[`decode`]) wrapped in a
//! [`WireFrame::Request`] and length-prefix-framed onto the wire — and the
//! frame reader rejects the malformed inputs a real TCP peer can produce:
//! truncated frames, trailing garbage, and wrong-version envelopes.

use ovnes_api::rpc::{read_frame_bytes, write_frame_bytes};
use ovnes_api::{
    decode, encode, CloudCommand, CloudReply, CodecError, MonitoringReport, RanCommand, RanReply,
    Request, TransportCommand, TransportReply, WireFrame, WIRE_VERSION,
};
use ovnes_model::{DcId, EnbId, Latency, NodeId, PlmnId, Prbs, RateMbps, SliceId};
use ovnes_sim::SimTime;
use proptest::collection::btree_map;
use proptest::prelude::*;
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::fmt::Debug;

// ---- strategies ----------------------------------------------------------

fn finite_f64() -> impl Strategy<Value = f64> {
    -1e9..1e9f64
}

fn ran_command() -> impl Strategy<Value = RanCommand> {
    prop_oneof![
        (any::<u64>(), any::<u64>(), 0..99u64, any::<u32>(), any::<u32>()).prop_map(
            |(enb, slice, plmn, reserved, nominal)| RanCommand::InstallPlmn {
                enb: EnbId::new(enb),
                slice: SliceId::new(slice),
                plmn: PlmnId::test_slice_plmn(plmn),
                reserved: Prbs::new(reserved),
                nominal: Prbs::new(nominal),
            }
        ),
        (any::<u64>(), any::<u32>()).prop_map(|(slice, reserved)| RanCommand::Resize {
            slice: SliceId::new(slice),
            reserved: Prbs::new(reserved),
        }),
        any::<u64>().prop_map(|slice| RanCommand::Release {
            slice: SliceId::new(slice)
        }),
    ]
}

fn ran_reply() -> impl Strategy<Value = RanReply> {
    prop_oneof![
        Just(RanReply::Done),
        any::<u32>().prop_map(|freed| RanReply::Released {
            freed: Prbs::new(freed)
        }),
    ]
}

fn transport_command() -> impl Strategy<Value = TransportCommand> {
    prop_oneof![
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            finite_f64(),
            finite_f64()
        )
            .prop_map(|(slice, src, dst, bandwidth, max_delay)| {
                TransportCommand::AllocatePath {
                    slice: SliceId::new(slice),
                    src: NodeId::new(src),
                    dst: NodeId::new(dst),
                    bandwidth: RateMbps::new(bandwidth),
                    max_delay: Latency::new(max_delay),
                }
            }),
        (any::<u64>(), finite_f64()).prop_map(|(slice, bandwidth)| TransportCommand::Resize {
            slice: SliceId::new(slice),
            bandwidth: RateMbps::new(bandwidth),
        }),
        any::<u64>().prop_map(|slice| TransportCommand::Release {
            slice: SliceId::new(slice)
        }),
    ]
}

fn transport_reply() -> impl Strategy<Value = TransportReply> {
    prop_oneof![
        (any::<usize>(), finite_f64()).prop_map(|(hops, delay)| TransportReply::PathAllocated {
            hops,
            delay: Latency::new(delay),
        }),
        Just(TransportReply::Done),
    ]
}

fn cloud_command() -> impl Strategy<Value = CloudCommand> {
    prop_oneof![
        (any::<u64>(), any::<u64>(), finite_f64(), "[a-z]{1,8}").prop_map(
            |(slice, dc, throughput, class)| CloudCommand::DeployEpc {
                slice: SliceId::new(slice),
                dc: DcId::new(dc),
                throughput: RateMbps::new(throughput),
                class,
            }
        ),
        any::<u64>().prop_map(|slice| CloudCommand::Delete {
            slice: SliceId::new(slice)
        }),
    ]
}

fn cloud_reply() -> impl Strategy<Value = CloudReply> {
    prop_oneof![
        (any::<u64>(), any::<usize>()).prop_map(|(deploy_time_us, vms)| CloudReply::Deployed {
            deploy_time_us,
            vms,
        }),
        Just(CloudReply::Done),
    ]
}

fn monitoring_report() -> impl Strategy<Value = MonitoringReport> {
    (
        "[a-z]{1,10}",
        any::<u64>(),
        btree_map("[a-z_.]{1,16}", finite_f64(), 0..6),
    )
        .prop_map(|(domain, at, scalars)| MonitoringReport {
            domain,
            at: SimTime::from_micros(at),
            scalars,
        })
}

// ---- the round trip every socket call takes ------------------------------

/// encode → WireFrame::Request → length-prefixed bytes → read back →
/// WireFrame parse → decode. Exactly the client-to-server path.
fn framed_round_trip<T>(value: &T, id: u64, endpoint: &str)
where
    T: Serialize + DeserializeOwned + PartialEq + Debug,
{
    let frame = WireFrame::Request(Request {
        id,
        endpoint: endpoint.to_owned(),
        body: encode(value).expect("encode"),
    });
    let mut wire = Vec::new();
    write_frame_bytes(&mut wire, &serde_json::to_vec(&frame).unwrap()).expect("write");

    let bytes = read_frame_bytes(&mut wire.as_slice()).expect("read");
    let back: WireFrame = serde_json::from_slice(&bytes).expect("frame parse");
    match back {
        WireFrame::Request(req) => {
            assert_eq!(req.id, id);
            assert_eq!(req.endpoint, endpoint);
            assert_eq!(&decode::<T>(&req.body).expect("decode"), value);
        }
        other => panic!("wrong frame kind: {other:?}"),
    }
}

proptest! {
    #[test]
    fn ran_commands_survive_the_framed_wire(cmd in ran_command(), id in any::<u64>()) {
        framed_round_trip(&cmd, id, "ran/command");
    }

    #[test]
    fn ran_replies_survive_the_framed_wire(reply in ran_reply(), id in any::<u64>()) {
        framed_round_trip(&reply, id, "ran/command");
    }

    #[test]
    fn transport_commands_survive_the_framed_wire(cmd in transport_command(), id in any::<u64>()) {
        framed_round_trip(&cmd, id, "transport/command");
    }

    #[test]
    fn transport_replies_survive_the_framed_wire(reply in transport_reply(), id in any::<u64>()) {
        framed_round_trip(&reply, id, "transport/command");
    }

    #[test]
    fn cloud_commands_survive_the_framed_wire(cmd in cloud_command(), id in any::<u64>()) {
        framed_round_trip(&cmd, id, "cloud/command");
    }

    #[test]
    fn cloud_replies_survive_the_framed_wire(reply in cloud_reply(), id in any::<u64>()) {
        framed_round_trip(&reply, id, "cloud/command");
    }

    #[test]
    fn monitoring_reports_survive_the_framed_wire(report in monitoring_report(), id in any::<u64>()) {
        framed_round_trip(&report, id, "ran/monitoring");
    }

    // ---- malformed wire input --------------------------------------------

    #[test]
    fn truncated_frames_error_instead_of_hanging_or_garbling(
        cmd in ran_command(),
        cut in any::<prop::sample::Index>(),
    ) {
        let frame = WireFrame::Request(Request {
            id: 1,
            endpoint: "ran/command".to_owned(),
            body: encode(&cmd).unwrap(),
        });
        let mut wire = Vec::new();
        write_frame_bytes(&mut wire, &serde_json::to_vec(&frame).unwrap()).unwrap();

        // Cut the wire anywhere strictly before the end: inside the length
        // prefix or inside the payload. Either way the reader must report
        // an error, never a short or fabricated frame.
        let cut = cut.index(wire.len());
        prop_assert!(read_frame_bytes(&mut &wire[..cut]).is_err());
    }

    #[test]
    fn trailing_garbage_does_not_bleed_into_the_frame(
        cmd in transport_command(),
        garbage in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let frame = WireFrame::Request(Request {
            id: 2,
            endpoint: "transport/command".to_owned(),
            body: encode(&cmd).unwrap(),
        });
        let mut wire = Vec::new();
        write_frame_bytes(&mut wire, &serde_json::to_vec(&frame).unwrap()).unwrap();
        let framed_len = wire.len();
        wire.extend_from_slice(&garbage);

        // The length prefix bounds the read exactly: the first frame comes
        // back intact and the garbage stays unconsumed in the reader.
        let mut reader = wire.as_slice();
        let bytes = read_frame_bytes(&mut reader).unwrap();
        let back: WireFrame = serde_json::from_slice(&bytes).unwrap();
        prop_assert_eq!(
            back,
            WireFrame::Request(Request {
                id: 2,
                endpoint: "transport/command".to_owned(),
                body: encode(&cmd).unwrap(),
            })
        );
        prop_assert_eq!(reader.len(), wire.len() - framed_len);
    }

    #[test]
    fn wrong_version_frames_report_the_mismatch_not_a_schema_error(
        report in monitoring_report(),
        version in (0u32..1000).prop_filter("must differ from WIRE_VERSION", |v| *v != WIRE_VERSION),
    ) {
        // A valid payload behind a wrong version must surface as
        // VersionMismatch — the schema is never even consulted.
        let body = serde_json::to_vec(&serde_json::json!({
            "version": version,
            "payload": report,
        }))
        .unwrap();
        match decode::<MonitoringReport>(&body) {
            Err(CodecError::VersionMismatch { found }) => prop_assert_eq!(found, version),
            other => return Err(TestCaseError::fail(format!(
                "expected VersionMismatch, got {other:?}"
            ))),
        }
    }
}
