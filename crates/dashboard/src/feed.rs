//! Push-telemetry feed: the dashboard as a subscriber.
//!
//! The demo's dashboard *monitors slice performance once deployed* — and
//! with the socket RPC plane it no longer has to poll for that: a
//! [`TelemetryFeed`] opens its own connection to a controller server,
//! subscribes to the domain's monitoring topic, and receives every report
//! the orchestrator pushes, as it is pushed ([`WireFrame::Push`] frames —
//! see `ovnes_api::rpc`). [`FeedState`] folds those pushes into a
//! latest-report-per-domain view and reports which scalars changed, so a
//! renderer can repaint deltas instead of whole panels.

use ovnes_api::rpc::{read_frame_bytes, write_frame, WireFrame};
use ovnes_api::{decode, CodecError, MonitoringReport};
use std::collections::BTreeMap;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A dashboard-side subscription connection to one controller server.
pub struct TelemetryFeed {
    stream: TcpStream,
    next_id: u64,
}

impl TelemetryFeed {
    /// Connect to the server at `addr`.
    pub fn connect(addr: SocketAddr) -> io::Result<TelemetryFeed> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(TelemetryFeed { stream, next_id: 0 })
    }

    /// Subscribe this connection to `topic` (a `{domain}/monitoring`
    /// endpoint); blocks until the server acks. Pushes received while
    /// waiting for the ack (from earlier subscriptions) are discarded —
    /// subscribe before the run starts.
    pub fn subscribe(&mut self, topic: &str) -> io::Result<()> {
        let id = self.next_id;
        self.next_id += 1;
        self.stream.set_read_timeout(None)?;
        write_frame(
            &mut self.stream,
            &WireFrame::Subscribe {
                id,
                topic: topic.to_owned(),
            },
        )?;
        loop {
            match read_frame_wire(&mut self.stream)? {
                WireFrame::Response { response: r, .. } if r.id == id => return Ok(()),
                WireFrame::Push { .. } => continue,
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected frame awaiting subscribe ack: {other:?}"),
                    ))
                }
            }
        }
    }

    /// Wait up to `timeout` for one pushed report. `Ok(None)` means the
    /// window elapsed quietly. Once a frame's length prefix has arrived the
    /// rest is read with a generous fixed timeout (the server writes frames
    /// back-to-back, so the payload is already in flight).
    pub fn poll(&mut self, timeout: Duration) -> io::Result<Option<(String, Vec<u8>)>> {
        self.stream.set_read_timeout(Some(timeout))?;
        let mut len = [0u8; 4];
        match self.stream.read_exact(&mut len) {
            Ok(()) => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Ok(None)
            }
            Err(e) => return Err(e),
        }
        let len = u32::from_be_bytes(len) as usize;
        if len > ovnes_api::MAX_FRAME_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("pushed frame length {len} exceeds MAX_FRAME_BYTES"),
            ));
        }
        self.stream
            .set_read_timeout(Some(Duration::from_secs(5)))?;
        let mut payload = vec![0u8; len];
        self.stream.read_exact(&mut payload)?;
        match serde_json::from_slice::<WireFrame>(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
        {
            WireFrame::Push { topic, body } => Ok(Some((topic, body))),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected frame on subscription stream: {other:?}"),
            )),
        }
    }
}

fn read_frame_wire(stream: &mut TcpStream) -> io::Result<WireFrame> {
    let bytes = read_frame_bytes(stream)?;
    serde_json::from_slice(&bytes)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// The dashboard's fold over pushed monitoring reports: latest report per
/// domain plus which scalars each push changed.
#[derive(Default)]
pub struct FeedState {
    latest: BTreeMap<String, MonitoringReport>,
    updates: u64,
}

impl FeedState {
    /// An empty feed state.
    pub fn new() -> FeedState {
        FeedState::default()
    }

    /// Fold in one report; returns the names of scalars whose value is new
    /// or changed relative to the domain's previous report (the delta a
    /// renderer repaints).
    pub fn apply(&mut self, report: MonitoringReport) -> Vec<String> {
        self.updates += 1;
        let previous = self.latest.get(&report.domain);
        let changed = report
            .scalars
            .iter()
            .filter(|(name, value)| {
                previous.and_then(|p| p.scalars.get(*name)) != Some(value)
            })
            .map(|(name, _)| name.clone())
            .collect();
        self.latest.insert(report.domain.clone(), report);
        changed
    }

    /// Decode a pushed body and fold it in.
    pub fn apply_push(&mut self, body: &[u8]) -> Result<Vec<String>, CodecError> {
        Ok(self.apply(decode::<MonitoringReport>(body)?))
    }

    /// The latest report from `domain`, if any arrived.
    pub fn latest(&self, domain: &str) -> Option<&MonitoringReport> {
        self.latest.get(domain)
    }

    /// Domains heard from so far, ascending.
    pub fn domains(&self) -> Vec<&str> {
        self.latest.keys().map(String::as_str).collect()
    }

    /// Total pushes folded in.
    pub fn updates(&self) -> u64 {
        self.updates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovnes_api::rpc::{register_control_endpoints, Router, RpcServer};
    use ovnes_api::{encode, SocketBus};
    use ovnes_sim::SimTime;

    fn report(domain: &str, at: u64, util: f64) -> MonitoringReport {
        let mut scalars = BTreeMap::new();
        scalars.insert("prb_utilization".to_owned(), util);
        scalars.insert("installs".to_owned(), 1.0);
        MonitoringReport {
            domain: domain.into(),
            at: SimTime::from_secs(at),
            scalars,
        }
    }

    #[test]
    fn feed_receives_pushed_reports_end_to_end() {
        let mut router = Router::new();
        register_control_endpoints(&mut router, "ran");
        let server = RpcServer::spawn(router).unwrap();

        let mut feed = TelemetryFeed::connect(server.addr()).unwrap();
        feed.subscribe("ran/monitoring").unwrap();

        // The orchestrator side posts a report; the server fans it out.
        let mut poster = SocketBus::new();
        poster.attach(&server);
        let posted = report("ran", 300, 0.63);
        poster
            .call("ran/monitoring", encode(&posted).unwrap())
            .unwrap();

        let (topic, body) = feed
            .poll(Duration::from_secs(5))
            .unwrap()
            .expect("push arrives");
        assert_eq!(topic, "ran/monitoring");
        let mut state = FeedState::new();
        let changed = state.apply_push(&body).unwrap();
        assert_eq!(changed, vec!["installs".to_owned(), "prb_utilization".to_owned()]);
        assert_eq!(state.latest("ran"), Some(&posted));
        assert_eq!(state.updates(), 1);

        // Quiet window: poll returns None without error.
        assert!(feed.poll(Duration::from_millis(50)).unwrap().is_none());
    }

    #[test]
    fn feed_state_reports_only_deltas() {
        let mut state = FeedState::new();
        let first = state.apply(report("ran", 0, 0.5));
        assert_eq!(first.len(), 2, "everything is new on the first report");
        let second = state.apply(report("ran", 60, 0.7));
        assert_eq!(second, vec!["prb_utilization".to_owned()]);
        let third = state.apply(report("ran", 120, 0.7));
        assert!(third.is_empty(), "unchanged report repaints nothing");
        assert_eq!(state.domains(), vec!["ran"]);
        assert_eq!(state.updates(), 3);
    }
}
