//! Aligned text tables for terminal dashboards and experiment reports.

use std::fmt;

/// Column alignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Align {
    /// Pad on the right.
    Left,
    /// Pad on the left (numbers).
    Right,
}

/// A simple text table: header + rows, rendered with box-drawing rules.
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers (all left-aligned).
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            aligns: vec![Align::Left; headers.len()],
            rows: Vec::new(),
        }
    }

    /// Set the alignment of every column.
    ///
    /// # Panics
    /// Panics if `aligns` length differs from the header count.
    pub fn with_aligns(mut self, aligns: &[Align]) -> Table {
        assert_eq!(aligns.len(), self.headers.len(), "alignment count mismatch");
        self.aligns = aligns.to_vec();
        self
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[String]) -> &mut Table {
        assert_eq!(cells.len(), self.headers.len(), "cell count mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Append a row of display-able values.
    pub fn row_display(&mut self, cells: &[&dyn fmt::Display]) -> &mut Table {
        let strings: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&strings)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let pad = |s: &str, w: usize, a: Align| -> String {
            let len = s.chars().count();
            let fill = " ".repeat(w - len);
            match a {
                Align::Left => format!("{s}{fill}"),
                Align::Right => format!("{fill}{s}"),
            }
        };
        let rule: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        let render_row = |cells: &[String], f: &mut fmt::Formatter<'_>| -> fmt::Result {
            let line: Vec<String> = cells
                .iter()
                .zip(&widths)
                .zip(&self.aligns)
                .map(|((c, &w), &a)| pad(c, w, a))
                .collect();
            writeln!(f, " {}", line.join(" | "))
        };
        render_row(&self.headers, f)?;
        writeln!(f, "{rule}")?;
        for row in &self.rows {
            render_row(row, f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]).with_aligns(&[Align::Left, Align::Right]);
        t.row(&["alpha".into(), "1".into()]);
        t.row(&["b".into(), "1234".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with('-'));
        // Right-aligned values line up at the end.
        assert!(lines[2].ends_with("    1"));
        assert!(lines[3].ends_with(" 1234"));
    }

    #[test]
    fn row_display_stringifies() {
        let mut t = Table::new(&["a", "b"]);
        t.row_display(&[&42, &"x"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert!(t.to_string().contains("42"));
    }

    #[test]
    #[should_panic(expected = "cell count")]
    fn wrong_cell_count_panics() {
        Table::new(&["a", "b"]).row(&["only-one".into()]);
    }

    #[test]
    #[should_panic(expected = "alignment count")]
    fn wrong_align_count_panics() {
        let _ = Table::new(&["a", "b"]).with_aligns(&[Align::Left]);
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new(&["x"]);
        assert!(t.is_empty());
        assert_eq!(t.to_string().lines().count(), 2);
    }

    #[test]
    fn unicode_width_is_char_based() {
        let mut t = Table::new(&["µ"]);
        t.row(&["ΔΣ".into()]);
        let s = t.to_string();
        assert!(s.contains("ΔΣ"));
    }
}
