//! Unicode sparklines: the dashboard's inline utilization/gain charts.

/// Render `values` as a sparkline using the eight block characters.
///
/// Values are scaled to the observed min–max range; a constant series
/// renders mid-height. Non-finite values render as spaces.
pub fn sparkline(values: &[f64]) -> String {
    render(values.len(), values.iter().copied())
}

/// Sparkline of a [`ovnes_sim::TimeSeries`] window, straight off the
/// borrowed `(time, value)` points — no intermediate value vector.
pub fn sparkline_points(points: &[(ovnes_sim::SimTime, f64)]) -> String {
    render(points.len(), points.iter().map(|&(_, v)| v))
}

/// Sparkline of the most recent `n` values of a series.
pub fn sparkline_tail(values: &[f64], n: usize) -> String {
    let start = values.len().saturating_sub(n);
    sparkline(&values[start..])
}

fn render(len: usize, values: impl Iterator<Item = f64> + Clone) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if len == 0 {
        return String::new();
    }
    let lo = values
        .clone()
        .filter(|v| v.is_finite())
        .fold(f64::INFINITY, f64::min);
    let hi = values
        .clone()
        .filter(|v| v.is_finite())
        .fold(f64::NEG_INFINITY, f64::max);
    if lo > hi {
        return " ".repeat(len); // nothing finite
    }
    let span = hi - lo;
    values
        .map(|v| {
            if !v.is_finite() {
                return ' ';
            }
            if span <= f64::EPSILON {
                return BLOCKS[3];
            }
            let idx = (((v - lo) / span) * 7.0).round() as usize;
            BLOCKS[idx.min(7)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_empty() {
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn constant_renders_mid_height() {
        assert_eq!(sparkline(&[5.0, 5.0, 5.0]), "▄▄▄");
    }

    #[test]
    fn ramp_uses_full_range() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        assert_eq!(s, "▁▂▃▄▅▆▇█");
    }

    #[test]
    fn extremes_map_to_extremes() {
        let s: Vec<char> = sparkline(&[0.0, 10.0, 0.0]).chars().collect();
        assert_eq!(s[0], '▁');
        assert_eq!(s[1], '█');
        assert_eq!(s[2], '▁');
    }

    #[test]
    fn non_finite_values_render_blank() {
        let s: Vec<char> = sparkline(&[0.0, f64::NAN, 1.0]).chars().collect();
        assert_eq!(s[1], ' ');
        assert_eq!(sparkline(&[f64::NAN, f64::INFINITY]), "  ");
    }

    #[test]
    fn points_render_like_plain_values() {
        use ovnes_sim::SimTime;
        let points: Vec<(SimTime, f64)> = (0u64..20)
            .map(|i| (SimTime::from_secs(i), (i as f64 * 0.7).sin()))
            .collect();
        let values: Vec<f64> = points.iter().map(|&(_, v)| v).collect();
        assert_eq!(sparkline_points(&points), sparkline(&values));
        assert_eq!(sparkline_points(&[]), "");
        assert_eq!(
            sparkline_points(&[(SimTime::from_secs(0), f64::NAN)]),
            " "
        );
    }

    #[test]
    fn tail_takes_last_n() {
        let v: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let s = sparkline_tail(&v, 8);
        assert_eq!(s.chars().count(), 8);
        assert!(s.ends_with('█'));
        assert_eq!(sparkline_tail(&v[..3], 8).chars().count(), 3);
    }
}
