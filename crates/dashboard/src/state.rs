//! The dashboard view-model: the panels the demo's control dashboard shows,
//! assembled from a live orchestrator.

use crate::spark::sparkline_points;
use crate::table::{Align, Table};
use ovnes_orchestrator::{Orchestrator, SliceState, DOMAINS};
use std::fmt::Write as _;

/// A renderable snapshot of the whole dashboard.
pub struct DashboardView {
    sections: Vec<(String, String)>,
}

impl DashboardView {
    /// Assemble the dashboard from the orchestrator's current state.
    pub fn capture(orchestrator: &Orchestrator) -> DashboardView {
        let sections = vec![
            ("SLICES".to_string(), Self::slices_panel(orchestrator)),
            ("RADIO ACCESS".to_string(), Self::ran_panel(orchestrator)),
            ("TRANSPORT".to_string(), Self::transport_panel(orchestrator)),
            ("CLOUD".to_string(), Self::cloud_panel(orchestrator)),
            (
                "OVERBOOKING — GAIN vs PENALTY".to_string(),
                Self::gain_panel(orchestrator),
            ),
            (
                "CONTROL PLANE".to_string(),
                Self::control_panel(orchestrator),
            ),
            (
                "SUBSTRATE".to_string(),
                Self::substrate_panel(orchestrator),
            ),
            (
                "SUPERVISION".to_string(),
                Self::supervision_panel(orchestrator),
            ),
            ("EVENTS".to_string(), Self::events_panel(orchestrator)),
        ];
        DashboardView { sections }
    }

    fn slices_panel(o: &Orchestrator) -> String {
        let mut t = Table::new(&[
            "slice", "tenant", "class", "state", "plmn", "throughput", "latency", "price",
            "violations",
        ])
        .with_aligns(&[
            Align::Left,
            Align::Left,
            Align::Left,
            Align::Left,
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
        ]);
        for r in o.records() {
            if matches!(r.state, SliceState::Rejected) {
                continue; // rejected requests live in the counters, not here
            }
            t.row(&[
                r.id.to_string(),
                r.request.tenant.to_string(),
                r.request.class.to_string(),
                r.state.to_string(),
                r.plmn.map_or("-".into(), |p| p.to_string()),
                r.request.sla.throughput.to_string(),
                r.request.sla.max_latency.to_string(),
                r.request.price.to_string(),
                format!("{}/{}", r.epochs_violated, r.epochs_active),
            ]);
        }
        let mut s = t.to_string();
        let m = o.metrics();
        let _ = writeln!(
            s,
            "submitted {}  admitted {}  rejected {} (policy {} / resources {})",
            m.counter_value("orchestrator.submitted").unwrap_or(0),
            m.counter_value("orchestrator.admitted").unwrap_or(0),
            m.counter_value("orchestrator.rejected_policy").unwrap_or(0)
                + m.counter_value("orchestrator.rejected_resources").unwrap_or(0),
            m.counter_value("orchestrator.rejected_policy").unwrap_or(0),
            m.counter_value("orchestrator.rejected_resources").unwrap_or(0),
        );
        s
    }

    fn ran_panel(o: &Orchestrator) -> String {
        let snap = o.ran().snapshot();
        let mut t = Table::new(&["enb", "plmns", "reserved", "nominal", "grid", "overbooking"])
            .with_aligns(&[
                Align::Left,
                Align::Right,
                Align::Right,
                Align::Right,
                Align::Right,
                Align::Right,
            ]);
        for row in &snap.enbs {
            t.row(&[
                row.enb.to_string(),
                row.plmns.to_string(),
                row.reserved.to_string(),
                row.nominal.to_string(),
                row.total.to_string(),
                format!("{:.2}x", row.overbooking_factor),
            ]);
        }
        let mut s = t.to_string();
        for row in &snap.enbs {
            if let Some(series) = o
                .ran()
                .metrics()
                .series_ref(&format!("ran.{}.prb_utilization", row.enb))
            {
                let _ = writeln!(
                    s,
                    "{} PRB utilization {}",
                    row.enb,
                    sparkline_points(series.tail(40))
                );
            }
        }
        s
    }

    fn transport_panel(o: &Orchestrator) -> String {
        let snap = o.transport().snapshot();
        let mut t = Table::new(&["link", "capacity", "reserved", "util", "health"]).with_aligns(&[
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
        ]);
        for row in &snap.links {
            t.row(&[
                row.link.to_string(),
                row.effective_capacity.to_string(),
                row.reserved.to_string(),
                format!("{:.0}%", row.utilization.min(9.99) * 100.0),
                format!("{:.0}%", row.degradation * 100.0),
            ]);
        }
        format!("{t}paths installed: {}\n", snap.paths)
    }

    fn cloud_panel(o: &Orchestrator) -> String {
        let snap = o.cloud().snapshot();
        let mut t = Table::new(&["dc", "kind", "vms", "utilization"]).with_aligns(&[
            Align::Left,
            Align::Left,
            Align::Right,
            Align::Right,
        ]);
        for row in &snap.dcs {
            t.row(&[
                row.dc.to_string(),
                format!("{:?}", row.kind).to_lowercase(),
                row.vms.to_string(),
                format!("{:.0}%", row.utilization * 100.0),
            ]);
        }
        format!("{t}stacks deployed: {}\n", snap.stacks)
    }

    fn gain_panel(o: &Orchestrator) -> String {
        let ledger = o.ledger();
        let mut s = String::new();
        let _ = writeln!(
            s,
            "income {}   penalties {}   NET {}",
            ledger.gross_income(),
            ledger.total_penalties(),
            ledger.net()
        );
        if let Some(series) = o.metrics().series_ref("orchestrator.savings_fraction") {
            let _ = writeln!(
                s,
                "capacity released by overbooking {}  (now {:.0}%)",
                sparkline_points(series.tail(40)),
                series.last().map_or(0.0, |(_, v)| v * 100.0)
            );
        }
        if let Some(series) = o.metrics().series_ref("orchestrator.overbooking_factor") {
            let _ = writeln!(
                s,
                "overbooking factor               {}  (now {:.2}x)",
                sparkline_points(series.tail(40)),
                series.last().map_or(0.0, |(_, v)| v)
            );
        }
        s
    }

    /// A per-slice detail view: demand vs delivery vs latency sparklines —
    /// what clicking a slice row on the demo dashboard would show.
    pub fn slice_detail(o: &Orchestrator, slice: ovnes_model::SliceId) -> Option<String> {
        let record = o.record(slice)?;
        let timeline = o.timeline(slice)?;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{slice} ({}, {})  committed {}  bound {}",
            record.request.class, record.state, record.request.sla.throughput,
            record.request.sla.max_latency,
        );
        let _ = writeln!(
            s,
            "offered   {}  (mean {:.1} Mbps)",
            sparkline_points(timeline.offered.tail(48)),
            timeline.offered.mean().unwrap_or(0.0)
        );
        let _ = writeln!(
            s,
            "delivered {}  (mean {:.1} Mbps)",
            sparkline_points(timeline.delivered.tail(48)),
            timeline.delivered.mean().unwrap_or(0.0)
        );
        let _ = writeln!(
            s,
            "latency   {}  (max {:.1} ms)",
            sparkline_points(timeline.latency.tail(48)),
            timeline.latency.max().unwrap_or(0.0)
        );
        let _ = writeln!(
            s,
            "violations {}/{} epochs  availability {:.2}%",
            record.epochs_violated,
            record.epochs_active,
            record.availability() * 100.0
        );
        Some(s)
    }

    fn control_panel(o: &Orchestrator) -> String {
        let m = o.metrics();
        let mut s = String::new();
        let _ = writeln!(
            s,
            "calls {}   retries {}   failures {}   domains unreachable now {}",
            m.counter_value("control.calls").unwrap_or(0),
            m.counter_value("control.retries").unwrap_or(0),
            m.counter_value("control.failures").unwrap_or(0),
            m.gauge_value("control.unreachable_domains").unwrap_or(0.0) as u64,
        );
        let control = o.control();
        let mut t = Table::new(&["endpoint", "served", "faults injected"]).with_aligns(&[
            Align::Left,
            Align::Right,
            Align::Right,
        ]);
        for domain in DOMAINS {
            for kind in ["health", "monitoring"] {
                let endpoint = format!("{domain}/{kind}");
                let injected = control
                    .fault_stats()
                    .and_then(|stats| stats.get(&endpoint))
                    .map_or(0, |st| st.injected());
                t.row(&[
                    endpoint.clone(),
                    control.served(&endpoint).to_string(),
                    injected.to_string(),
                ]);
            }
        }
        s.push_str(&t.to_string());
        match control.fault_plan() {
            Some(plan) => {
                let _ = writeln!(
                    s,
                    "fault plan: seed {}, {} endpoint(s) configured",
                    plan.seed(),
                    plan.endpoints().count()
                );
            }
            None => {
                let _ = writeln!(s, "no fault plan installed");
            }
        }
        s
    }

    fn substrate_panel(o: &Orchestrator) -> String {
        let m = o.metrics();
        let mut s = String::new();
        let links = o.transport().snapshot().links;
        let links_up = links.iter().filter(|l| l.up).count();
        let enbs = o.ran().snapshot().enbs;
        let cells_up = enbs.iter().filter(|e| e.up).count();
        let (hosts_alive, hosts_total) =
            o.cloud()
                .snapshot()
                .dcs
                .iter()
                .fold((0usize, 0usize), |(alive, total), row| {
                    let dc = o.cloud().dc(row.dc);
                    (
                        alive + dc.map_or(0, |d| d.alive_hosts()),
                        total + dc.map_or(0, |d| d.hosts().len()),
                    )
                });
        let _ = writeln!(
            s,
            "links up {links_up}/{}   cells up {cells_up}/{}   hosts alive {hosts_alive}/{hosts_total}   elements down now {}",
            links.len(),
            enbs.len(),
            m.gauge_value("substrate.elements_down").unwrap_or(0.0) as u64,
        );
        let c = |name: &str| m.counter_value(name).unwrap_or(0);
        let _ = writeln!(
            s,
            "failures {}   recoveries {}   reroutes {}   re-attaches {}   re-placements {}",
            c("substrate.element_failures"),
            c("substrate.element_recoveries"),
            c("substrate.reroutes"),
            c("substrate.reattaches"),
            c("substrate.replacements"),
        );
        let _ = writeln!(
            s,
            "degraded {}   repaired {}   restored {}",
            c("substrate.degraded"),
            c("substrate.repaired"),
            c("substrate.restored"),
        );
        let degraded = o.substrate_degraded();
        if !degraded.is_empty() {
            let ids: Vec<String> = degraded.iter().map(|id| id.to_string()).collect();
            let _ = writeln!(s, "degraded now: {}", ids.join(", "));
        }
        match o.substrate_plan() {
            Some(plan) => {
                let _ = writeln!(
                    s,
                    "substrate plan: seed {}, {} element(s) scheduled",
                    plan.seed(),
                    plan.elements().count()
                );
            }
            None => {
                let _ = writeln!(s, "no substrate plan installed");
            }
        }
        s
    }

    fn supervision_panel(o: &Orchestrator) -> String {
        let m = o.metrics();
        let mut t = Table::new(&[
            "domain",
            "health",
            "failed probes",
            "incidents",
            "repairs",
        ])
        .with_aligns(&[
            Align::Left,
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Right,
        ]);
        for domain in DOMAINS {
            if let Some(h) = o.domain_health(domain) {
                t.row(&[
                    domain.to_string(),
                    h.state.to_string(),
                    h.failed_probes.to_string(),
                    h.incidents.to_string(),
                    h.repairs.to_string(),
                ]);
            }
        }
        let mut s = t.to_string();
        // Wire-level diagnostics (stale-rejection counts, incarnation
        // terms) are deliberately absent: a supervised run's dashboard
        // must stay byte-identical to an undisturbed one.
        let c = |name: &str| m.counter_value(name).unwrap_or(0);
        let _ = writeln!(
            s,
            "suspects {}   downs {}   repairs {}",
            c("supervise.suspects"),
            c("supervise.downs"),
            c("supervise.repairs"),
        );
        match m.series_ref("supervise.time_to_repair") {
            Some(series) if !series.is_empty() => {
                let _ = writeln!(
                    s,
                    "time to repair: mean {:.0} s over {} incident(s)",
                    series.mean().unwrap_or(0.0),
                    series.len(),
                );
            }
            _ => {
                let _ = writeln!(s, "no repairs booked");
            }
        }
        s
    }

    fn events_panel(o: &Orchestrator) -> String {
        let mut s = String::new();
        let events = o.events();
        if events.is_empty() {
            s.push_str("(no events yet)\n");
            return s;
        }
        for e in events.tail(12) {
            let _ = writeln!(s, "{e}");
        }
        let _ = writeln!(s, "({} events total)", events.total_logged());
        s
    }

    /// Render the full dashboard.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (title, body) in &self.sections {
            let _ = writeln!(out, "══ {title} {}", "═".repeat(60usize.saturating_sub(title.len())));
            out.push_str(body);
            out.push('\n');
        }
        out
    }

    /// The individual panels, for selective display.
    pub fn sections(&self) -> &[(String, String)] {
        &self.sections
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovnes_orchestrator::{DemoScenario, ScenarioConfig};
    use ovnes_sim::SimDuration;

    fn scenario() -> DemoScenario {
        DemoScenario::build(ScenarioConfig {
            horizon: SimDuration::from_hours(1),
            arrivals_per_hour: 20.0,
            ..ScenarioConfig::default()
        })
    }

    #[test]
    fn captures_all_panels() {
        let mut s = scenario();
        s.run();
        let view = DashboardView::capture(s.orchestrator());
        assert_eq!(view.sections().len(), 9);
        let rendered = view.render();
        for header in [
            "SLICES",
            "RADIO ACCESS",
            "TRANSPORT",
            "CLOUD",
            "GAIN vs PENALTY",
            "CONTROL PLANE",
            "SUBSTRATE",
            "SUPERVISION",
            "EVENTS",
        ] {
            assert!(rendered.contains(header), "missing {header}");
        }
        assert!(rendered.contains("enb-0"));
        assert!(rendered.contains("dc-0"));
        assert!(rendered.contains("NET"));
        // With no fault plan the control panel still reports call volume.
        assert!(rendered.contains("no fault plan installed"));
        assert!(rendered.contains("ran/health"));
        // Without a substrate plan every element is up and the panel says so.
        assert!(rendered.contains("no substrate plan installed"));
        assert!(rendered.contains("links up 7/7"), "{rendered}");
        assert!(rendered.contains("cells up 2/2"), "{rendered}");
        assert!(rendered.contains("hosts alive 20/20"), "{rendered}");
        // A faultless run's supervision panel is all-Up with no repairs.
        assert!(
            rendered.contains("suspects 0   downs 0   repairs 0"),
            "{rendered}"
        );
        assert!(rendered.contains("no repairs booked"), "{rendered}");
    }

    #[test]
    fn supervision_panel_tracks_outages() {
        use ovnes_api::{EndpointFaults, FaultPlan};
        use ovnes_sim::SimTime;
        let mut s = scenario();
        // RAN controller dark for minutes [10, 14): Suspect at 10, Down at
        // 11, repaired at 14.
        s.orchestrator_mut().set_fault_plan(
            FaultPlan::new(41).with_endpoint(
                "ran/health",
                EndpointFaults::none().with_outage(
                    SimTime::ZERO + SimDuration::from_mins(10),
                    SimTime::ZERO + SimDuration::from_mins(14),
                ),
            ),
        );
        s.run();
        let rendered = DashboardView::capture(s.orchestrator()).render();
        assert!(
            rendered.contains("suspects 1   downs 1   repairs 1"),
            "{rendered}"
        );
        assert!(
            rendered.contains("time to repair: mean 240 s over 1 incident(s)"),
            "{rendered}"
        );
        // The ran table row: back up, 4 failed probes, 1 incident, 1 repair.
        let line = rendered
            .lines()
            .find(|l| l.trim_start().starts_with("ran") && !l.contains('/'))
            .expect("ran health row");
        assert!(line.contains("up"), "{line}");
        assert!(line.contains('4'), "{line}");
    }

    #[test]
    fn shows_admission_counters() {
        let mut s = scenario();
        s.run();
        let rendered = DashboardView::capture(s.orchestrator()).render();
        assert!(rendered.contains("submitted"));
        assert!(rendered.contains("admitted"));
    }

    #[test]
    fn empty_orchestrator_renders_without_panic() {
        // A freshly built scenario that never ran still renders.
        let s = scenario();
        let rendered = DashboardView::capture(s.orchestrator()).render();
        assert!(rendered.contains("SLICES"));
        assert!(rendered.contains("paths installed: 0"));
    }

    #[test]
    fn slice_detail_renders_timeline() {
        let mut s = scenario();
        s.run();
        // Find any slice that served epochs.
        let id = s
            .orchestrator()
            .records()
            .find(|r| r.epochs_active > 0)
            .map(|r| r.id)
            .expect("scenario served slices");
        let detail = DashboardView::slice_detail(s.orchestrator(), id).unwrap();
        assert!(detail.contains("offered"));
        assert!(detail.contains("delivered"));
        assert!(detail.contains("availability"));
        // Unknown slices yield None.
        assert!(DashboardView::slice_detail(s.orchestrator(), ovnes_model::SliceId::new(9999)).is_none());
    }

    #[test]
    fn control_panel_surfaces_injected_faults() {
        use ovnes_api::{EndpointFaults, FaultPlan};
        let mut s = scenario();
        s.orchestrator_mut().set_fault_plan(
            FaultPlan::new(21)
                .with_endpoint("ran/health", EndpointFaults::none().with_drop(0.4)),
        );
        s.run();
        let rendered = DashboardView::capture(s.orchestrator()).render();
        assert!(rendered.contains("fault plan: seed 21, 1 endpoint(s) configured"));
        assert!(rendered.contains("retries"), "{rendered}");
        // The perturbed endpoint's injected-fault column is nonzero.
        let line = rendered
            .lines()
            .find(|l| l.contains("ran/health"))
            .expect("endpoint row");
        let injected: u64 = line
            .split_whitespace()
            .last()
            .unwrap()
            .parse()
            .expect("numeric faults column");
        assert!(injected > 0, "{line}");
    }

    #[test]
    fn substrate_panel_surfaces_injected_faults() {
        use ovnes_api::{SubstrateElement, SubstrateFaultPlan};
        use ovnes_model::LinkId;
        use ovnes_sim::SimTime;
        let mut s = scenario();
        s.orchestrator_mut().set_substrate_plan(
            SubstrateFaultPlan::new(31).with_outage(
                SubstrateElement::Link(LinkId::new(0)),
                SimTime::ZERO + SimDuration::from_mins(10),
                SimTime::ZERO + SimDuration::from_mins(20),
            ),
        );
        s.run();
        let rendered = DashboardView::capture(s.orchestrator()).render();
        assert!(
            rendered.contains("substrate plan: seed 31, 1 element(s) scheduled"),
            "{rendered}"
        );
        // The outage window closed before the horizon: one failure, one
        // recovery, everything back up.
        assert!(rendered.contains("failures 1   recoveries 1"), "{rendered}");
        assert!(rendered.contains("links up 7/7"), "{rendered}");
    }

    #[test]
    fn events_panel_shows_lifecycle() {
        let mut s = scenario();
        s.run();
        let rendered = DashboardView::capture(s.orchestrator()).render();
        assert!(rendered.contains("admitted as"), "{rendered}");
        assert!(rendered.contains("events total"));
    }

    #[test]
    fn active_slices_appear_with_plmn() {
        let mut s = scenario();
        s.run();
        let rendered = DashboardView::capture(s.orchestrator()).render();
        // At least one row carries a test PLMN (001-xx).
        assert!(rendered.contains("001-"), "{rendered}");
    }
}
