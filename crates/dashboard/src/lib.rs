//! # ovnes-dashboard — the control dashboard, terminal edition
//!
//! The demo *"is operated through a dashboard that allows requesting network
//! slices on-demand, monitors their performance once deployed and displays
//! the achieved multiplexing gain through overbooking"*. This crate renders
//! that dashboard's panels as text (tables + sparklines) from a live
//! [`Orchestrator`](ovnes_orchestrator::Orchestrator), and exports the
//! underlying series as CSV/JSON for the experiment write-ups.
//!
//! * [`table`] — aligned text tables.
//! * [`spark`] — unicode sparklines for epoch series.
//! * [`state`] — the dashboard view-model assembled from the orchestrator.
//! * [`feed`] — push-telemetry subscription to socket controller servers:
//!   the dashboard receives monitoring deltas instead of polling.
//! * [`regions`] — the REGIONS panel for federated runs: per-region
//!   telemetry folded from the same push feed (`r{region}/{domain}`
//!   prefixed reports), delta-reported.
//! * [`export`] — CSV and JSON export.

pub mod export;
pub mod feed;
pub mod regions;
pub mod spark;
pub mod state;
pub mod table;

pub use export::{to_csv, to_json_pretty};
pub use feed::{FeedState, TelemetryFeed};
pub use regions::RegionsPanel;
pub use spark::{sparkline, sparkline_points};
pub use state::DashboardView;
pub use table::Table;
