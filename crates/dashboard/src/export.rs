//! CSV and JSON export of dashboard/experiment series.

use ovnes_sim::TimeSeries;
use serde::Serialize;

/// Render named time series as CSV: `time_s,<name1>,<name2>,…` rows joined
/// on the union of timestamps (missing samples are empty cells).
pub fn to_csv(series: &[(&str, &TimeSeries)]) -> String {
    let mut out = String::new();
    out.push_str("time_s");
    for (name, _) in series {
        out.push(',');
        // Quote names containing commas.
        if name.contains(',') {
            out.push('"');
            out.push_str(&name.replace('"', "\"\""));
            out.push('"');
        } else {
            out.push_str(name);
        }
    }
    out.push('\n');

    // Union of timestamps, ascending.
    let mut times: Vec<u64> = series
        .iter()
        .flat_map(|(_, s)| s.points().iter().map(|&(t, _)| t.as_micros()))
        .collect();
    times.sort_unstable();
    times.dedup();

    for t in times {
        out.push_str(&format!("{:.6}", t as f64 / 1e6));
        for (_, s) in series {
            out.push(',');
            if let Some(&(_, v)) = s
                .points()
                .iter()
                .find(|&&(pt, _)| pt.as_micros() == t)
            {
                out.push_str(&format!("{v}"));
            }
        }
        out.push('\n');
    }
    out
}

/// Serialize any value as pretty JSON (for EXPERIMENTS.md appendices).
pub fn to_json_pretty<T: Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("exported values are serializable")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovnes_sim::SimTime;

    fn series(points: &[(u64, f64)]) -> TimeSeries {
        let mut s = TimeSeries::new();
        for &(t, v) in points {
            s.record(SimTime::from_secs(t), v);
        }
        s
    }

    #[test]
    fn csv_joins_on_time_union() {
        let a = series(&[(1, 10.0), (2, 20.0)]);
        let b = series(&[(2, 0.5), (3, 0.7)]);
        let csv = to_csv(&[("load", &a), ("util", &b)]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time_s,load,util");
        assert_eq!(lines[1], "1.000000,10,");
        assert_eq!(lines[2], "2.000000,20,0.5");
        assert_eq!(lines[3], "3.000000,,0.7");
    }

    #[test]
    fn csv_quotes_awkward_names() {
        let a = series(&[(1, 1.0)]);
        let csv = to_csv(&[("a,b", &a)]);
        assert!(csv.starts_with("time_s,\"a,b\""));
    }

    #[test]
    fn csv_of_empty_series_is_header_only() {
        let a = TimeSeries::new();
        let csv = to_csv(&[("x", &a)]);
        assert_eq!(csv, "time_s,x\n");
    }

    #[test]
    fn json_pretty_round_trips() {
        #[derive(Serialize)]
        struct S {
            a: u32,
        }
        let j = to_json_pretty(&S { a: 5 });
        assert!(j.contains("\"a\": 5"));
    }
}
