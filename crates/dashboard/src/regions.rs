//! The REGIONS panel: per-region telemetry for federated runs.
//!
//! A federated broker prefixes every region's monitoring domain as
//! `r{region}/{domain}` (see `FederationBroker::monitoring` in
//! `ovnes-orchestrator`), so the same push-telemetry pipeline that feeds
//! the single-world dashboard carries shard telemetry unchanged: the panel
//! subscribes to the monitoring topics, folds each pushed report through a
//! [`FeedState`], and repaints only what a push changed — no polling, and
//! no per-region connections beyond the feed that already exists.

use crate::feed::FeedState;
use crate::table::{Align, Table};
use ovnes_api::{CodecError, MonitoringReport};
use std::collections::BTreeMap;

/// Delta-folded per-region telemetry, rendered as one row per region.
#[derive(Default)]
pub struct RegionsPanel {
    feed: FeedState,
    /// Pushes folded per region (keyed by the numeric region index).
    updates: BTreeMap<u64, u64>,
}

impl RegionsPanel {
    /// An empty panel.
    pub fn new() -> RegionsPanel {
        RegionsPanel::default()
    }

    /// Split a region-prefixed domain (`r3/transport`) into its region
    /// index and inner domain. Reports without the prefix are not region
    /// telemetry and are ignored by the panel.
    fn parse_domain(domain: &str) -> Option<(u64, &str)> {
        let rest = domain.strip_prefix('r')?;
        let (region, inner) = rest.split_once('/')?;
        region.parse::<u64>().ok().map(|r| (r, inner))
    }

    /// Fold in one pushed report. Returns the changed scalar names
    /// qualified as `r{region}/{domain}:{scalar}` — the exact cells a
    /// renderer repaints. Non-region reports return an empty delta.
    pub fn apply(&mut self, report: MonitoringReport) -> Vec<String> {
        let Some((region, _)) = Self::parse_domain(&report.domain) else {
            return Vec::new();
        };
        *self.updates.entry(region).or_insert(0) += 1;
        let domain = report.domain.clone();
        self.feed
            .apply(report)
            .into_iter()
            .map(|scalar| format!("{domain}:{scalar}"))
            .collect()
    }

    /// Decode a pushed body and fold it in.
    pub fn apply_push(&mut self, body: &[u8]) -> Result<Vec<String>, CodecError> {
        Ok(self.apply(ovnes_api::decode::<MonitoringReport>(body)?))
    }

    /// Region indices heard from so far, ascending.
    pub fn regions(&self) -> Vec<u64> {
        self.updates.keys().copied().collect()
    }

    /// Pushes folded in for `region`.
    pub fn updates_for(&self, region: u64) -> u64 {
        self.updates.get(&region).copied().unwrap_or(0)
    }

    /// The latest report for `region`'s `domain`, if one arrived.
    pub fn latest(&self, region: u64, domain: &str) -> Option<&MonitoringReport> {
        self.feed.latest(&format!("r{region}/{domain}"))
    }

    /// Render the panel: one row per region with the domains heard from,
    /// the freshest report time, the scalar count, and the pushes folded.
    pub fn render(&self) -> String {
        let mut table = Table::new(&["REGION", "DOMAINS", "LAST REPORT", "SCALARS", "PUSHES"])
            .with_aligns(&[
                Align::Left,
                Align::Left,
                Align::Right,
                Align::Right,
                Align::Right,
            ]);
        for &region in self.updates.keys() {
            let prefix = format!("r{region}/");
            let mut domains: Vec<&str> = Vec::new();
            let mut scalars = 0usize;
            let mut last = None;
            for domain in self.feed.domains() {
                let Some(inner) = domain.strip_prefix(&prefix) else {
                    continue;
                };
                domains.push(inner);
                if let Some(report) = self.feed.latest(domain) {
                    scalars += report.scalars.len();
                    last = match last {
                        Some(at) if at >= report.at => Some(at),
                        _ => Some(report.at),
                    };
                }
            }
            table.row(&[
                format!("r{region}"),
                domains.join(","),
                last.map(|at| at.to_string()).unwrap_or_default(),
                scalars.to_string(),
                self.updates_for(region).to_string(),
            ]);
        }
        table.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovnes_sim::SimTime;

    fn report(domain: &str, at: u64, util: f64) -> MonitoringReport {
        let mut scalars = BTreeMap::new();
        scalars.insert("prb_utilization".to_owned(), util);
        MonitoringReport {
            domain: domain.into(),
            at: SimTime::from_secs(at),
            scalars,
        }
    }

    #[test]
    fn folds_region_prefixed_reports_and_reports_deltas() {
        let mut panel = RegionsPanel::new();
        let first = panel.apply(report("r0/ran", 60, 0.5));
        assert_eq!(first, vec!["r0/ran:prb_utilization".to_owned()]);
        let same = panel.apply(report("r0/ran", 120, 0.5));
        assert!(same.is_empty(), "unchanged scalar repaints nothing");
        let moved = panel.apply(report("r0/ran", 180, 0.7));
        assert_eq!(moved, vec!["r0/ran:prb_utilization".to_owned()]);
        let other = panel.apply(report("r1/transport", 60, 0.2));
        assert_eq!(other, vec!["r1/transport:prb_utilization".to_owned()]);
        assert_eq!(panel.regions(), vec![0, 1]);
        assert_eq!(panel.updates_for(0), 3);
        assert_eq!(panel.updates_for(1), 1);
        assert_eq!(panel.latest(0, "ran").unwrap().at, SimTime::from_secs(180));
    }

    #[test]
    fn unprefixed_reports_are_ignored() {
        let mut panel = RegionsPanel::new();
        assert!(panel.apply(report("ran", 60, 0.5)).is_empty());
        assert!(panel.apply(report("radio/x", 60, 0.5)).is_empty());
        assert!(panel.regions().is_empty());
    }

    #[test]
    fn renders_one_row_per_region() {
        let mut panel = RegionsPanel::new();
        panel.apply(report("r0/ran", 60, 0.5));
        panel.apply(report("r0/transport", 120, 0.4));
        panel.apply(report("r2/ran", 60, 0.9));
        let rendered = panel.render();
        assert!(rendered.contains("REGION"), "{rendered}");
        assert!(rendered.contains("r0"), "{rendered}");
        assert!(rendered.contains("r2"), "{rendered}");
        assert!(rendered.contains("ran,transport"), "{rendered}");
    }
}
