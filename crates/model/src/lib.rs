//! # ovnes-model — shared domain vocabulary for end-to-end network slicing
//!
//! Types every domain of the reproduced testbed agrees on: physical
//! [`units`], PLMN identifiers ([`plmn`]) onto which slices are mapped (the
//! demo's MOCN trick), slice requests and SLAs ([`crate::slice`]) exactly as the
//! demo's dashboard form collects them (duration, max latency, expected
//! throughput, price, penalty), typed entity [`ids`], and the [`revenue`]
//! accounting the admission engine maximizes.

pub mod ids;
pub mod plmn;
pub mod revenue;
pub mod slice;
pub mod units;

pub use ids::{DcId, EnbId, HostId, LinkId, NodeId, SliceId, StackId, SwitchId, TenantId, UeId, VmId};
pub use plmn::PlmnId;
pub use revenue::{Money, RevenueLedger, RevenueRecord};
pub use slice::{Sla, SliceClass, SliceRequest, SliceRequestBuilder};
pub use units::{DiskGb, Latency, MemMb, Prbs, RateMbps, VCpus};
