//! Typed identifiers for every entity in the testbed.
//!
//! Plain `u64` wrappers with a distinct type per entity class, so a slice id
//! can never be passed where an eNB id is expected. All ids are allocated by
//! the component that owns the entity (the RAN controller mints `EnbId`s,
//! the orchestrator mints `SliceId`s, …).

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($name:ident, $prefix:literal, $doc:literal) => {
        #[doc = $doc]
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
        pub struct $name(u64);

        impl $name {
            /// Construct from a raw index.
            pub const fn new(v: u64) -> Self {
                $name(v)
            }

            /// The raw index.
            pub const fn value(self) -> u64 {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Debug::fmt(self, f)
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                $name(v)
            }
        }
    };
}

id_type!(
    SliceId,
    "slice-",
    "A network slice instance, minted by the E2E orchestrator at admission."
);
id_type!(
    TenantId,
    "tenant-",
    "A tenant (vertical industry customer) requesting slices."
);
id_type!(
    EnbId,
    "enb-",
    "An eNodeB (radio access point) in the RAN domain."
);
id_type!(UeId, "ue-", "A user equipment attached to a PLMN/slice.");
id_type!(NodeId, "node-", "A vertex of the transport topology graph.");
id_type!(LinkId, "link-", "An edge of the transport topology graph.");
id_type!(
    SwitchId,
    "switch-",
    "An OpenFlow-programmable switch in the transport network."
);
id_type!(DcId, "dc-", "A data center (edge or core).");
id_type!(HostId, "host-", "A compute host inside a data center.");
id_type!(VmId, "vm-", "A virtual machine (VNF component) instance.");
id_type!(
    StackId,
    "stack-",
    "A Heat-style orchestration stack (group of VMs with lifecycle)."
);

/// Deterministic id allocator: hands out 0, 1, 2, … of any id type.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IdAllocator {
    next: u64,
}

impl IdAllocator {
    /// Allocator starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mint the next id.
    #[allow(clippy::should_implement_trait)] // not an iterator: mints typed ids
    pub fn next<T: From<u64>>(&mut self) -> T {
        let v = self.next;
        self.next += 1;
        T::from(v)
    }

    /// How many ids have been minted.
    pub fn minted(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_with_prefix() {
        assert_eq!(format!("{}", SliceId::new(3)), "slice-3");
        assert_eq!(format!("{:?}", EnbId::new(0)), "enb-0");
        assert_eq!(format!("{}", StackId::new(12)), "stack-12");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(VmId::new(1));
        set.insert(VmId::new(1));
        set.insert(VmId::new(2));
        assert_eq!(set.len(), 2);
        assert!(LinkId::new(1) < LinkId::new(5));
    }

    #[test]
    fn allocator_is_sequential() {
        let mut alloc = IdAllocator::new();
        let a: SliceId = alloc.next();
        let b: SliceId = alloc.next();
        assert_eq!(a, SliceId::new(0));
        assert_eq!(b, SliceId::new(1));
        assert_eq!(alloc.minted(), 2);
    }

    #[test]
    fn serde_round_trip() {
        let id = DcId::new(42);
        let j = serde_json::to_string(&id).unwrap();
        assert_eq!(serde_json::from_str::<DcId>(&j).unwrap(), id);
    }
}
