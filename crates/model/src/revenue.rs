//! Money and revenue accounting.
//!
//! The demo dashboard's headline view is *gains vs. penalties*: revenue from
//! slices admitted thanks to overbooking, against the penalties paid when an
//! overbooked slice's SLA is violated. [`Money`] is integer cents so the
//! ledger is exact; [`RevenueLedger`] accumulates the records the dashboard
//! displays.

use crate::{SliceId, TenantId};
use ovnes_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Neg, Sub, SubAssign};

/// Exact currency amount in integer cents. Signed, because the net of gains
/// and penalties can go negative under reckless overbooking.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Money(i64);

impl Money {
    /// Zero.
    pub const ZERO: Money = Money(0);

    /// From whole currency units (e.g. euros).
    pub const fn from_units(units: i64) -> Money {
        Money(units * 100)
    }

    /// From cents.
    pub const fn from_cents(cents: i64) -> Money {
        Money(cents)
    }

    /// Whole units (truncating).
    pub const fn units(self) -> i64 {
        self.0 / 100
    }

    /// Cents.
    pub const fn cents(self) -> i64 {
        self.0
    }

    /// Value as float units, for ratios and plots.
    pub fn as_f64(self) -> f64 {
        self.0 as f64 / 100.0
    }

    /// Scale by a float factor, rounding to the nearest cent.
    pub fn scale(self, k: f64) -> Money {
        Money((self.0 as f64 * k).round() as i64)
    }

    /// True if strictly negative.
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }
}

impl Add for Money {
    type Output = Money;
    fn add(self, o: Money) -> Money {
        Money(self.0 + o.0)
    }
}
impl AddAssign for Money {
    fn add_assign(&mut self, o: Money) {
        self.0 += o.0;
    }
}
impl Sub for Money {
    type Output = Money;
    fn sub(self, o: Money) -> Money {
        Money(self.0 - o.0)
    }
}
impl SubAssign for Money {
    fn sub_assign(&mut self, o: Money) {
        self.0 -= o.0;
    }
}
impl Neg for Money {
    type Output = Money;
    fn neg(self) -> Money {
        Money(-self.0)
    }
}
impl Sum for Money {
    fn sum<I: Iterator<Item = Money>>(iter: I) -> Money {
        iter.fold(Money::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Money {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.0 < 0 { "-" } else { "" };
        let abs = self.0.abs();
        write!(f, "{sign}{}.{:02}", abs / 100, abs % 100)
    }
}

impl fmt::Display for Money {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// One revenue event in the ledger.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RevenueRecord {
    /// When the event was booked.
    pub at: SimTime,
    /// The slice the event concerns.
    pub slice: SliceId,
    /// The paying/penalized tenant.
    pub tenant: TenantId,
    /// What kind of event.
    pub kind: RevenueKind,
    /// Signed amount: positive for income, negative for penalties/refunds.
    pub amount: Money,
}

/// Classification of revenue events.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RevenueKind {
    /// Slice admitted: the agreed price is booked.
    AdmissionIncome,
    /// SLA violated in a monitoring epoch: the agreed penalty is paid out.
    SlaPenalty,
    /// Slice terminated early by the provider: remaining value refunded.
    EarlyTerminationRefund,
}

/// Append-only record of gains and penalties — the data behind the demo
/// dashboard's "gain vs. penalty" display.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RevenueLedger {
    records: Vec<RevenueRecord>,
}

impl RevenueLedger {
    /// Empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Book an event. Income must be recorded positive, penalties/refunds
    /// negative; the kind/sign pairing is asserted.
    pub fn book(&mut self, record: RevenueRecord) {
        match record.kind {
            RevenueKind::AdmissionIncome => {
                debug_assert!(record.amount.cents() >= 0, "income must be non-negative")
            }
            RevenueKind::SlaPenalty | RevenueKind::EarlyTerminationRefund => {
                debug_assert!(record.amount.cents() <= 0, "outflows must be non-positive")
            }
        }
        self.records.push(record);
    }

    /// All records, in booking order.
    pub fn records(&self) -> &[RevenueRecord] {
        &self.records
    }

    /// Total positive income (admission revenue).
    pub fn gross_income(&self) -> Money {
        self.records
            .iter()
            .filter(|r| r.kind == RevenueKind::AdmissionIncome)
            .map(|r| r.amount)
            .sum()
    }

    /// Total penalties paid (returned as a non-negative magnitude).
    pub fn total_penalties(&self) -> Money {
        -self
            .records
            .iter()
            .filter(|r| r.kind == RevenueKind::SlaPenalty)
            .map(|r| r.amount)
            .sum::<Money>()
    }

    /// Net revenue: income minus all outflows.
    pub fn net(&self) -> Money {
        self.records.iter().map(|r| r.amount).sum()
    }

    /// Net revenue attributable to one slice.
    pub fn net_for_slice(&self, slice: SliceId) -> Money {
        self.records
            .iter()
            .filter(|r| r.slice == slice)
            .map(|r| r.amount)
            .sum()
    }

    /// Number of SLA penalty events booked.
    pub fn penalty_count(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.kind == RevenueKind::SlaPenalty)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn money_construction_and_accessors() {
        let m = Money::from_units(12);
        assert_eq!(m.cents(), 1200);
        assert_eq!(m.units(), 12);
        assert_eq!(m.as_f64(), 12.0);
        assert_eq!(Money::from_cents(1250).units(), 12);
    }

    #[test]
    fn money_arithmetic_is_exact() {
        let a = Money::from_cents(10);
        let b = Money::from_cents(3);
        assert_eq!((a + b).cents(), 13);
        assert_eq!((a - b).cents(), 7);
        assert_eq!((b - a).cents(), -7);
        assert_eq!((-a).cents(), -10);
        assert!((b - a).is_negative());
        let total: Money = [a, b, -a].into_iter().sum();
        assert_eq!(total, b);
    }

    #[test]
    fn money_scale_rounds_to_cent() {
        assert_eq!(Money::from_cents(100).scale(0.333).cents(), 33);
        assert_eq!(Money::from_cents(100).scale(0.335).cents(), 34);
    }

    #[test]
    fn money_display() {
        assert_eq!(Money::from_cents(1234).to_string(), "12.34");
        assert_eq!(Money::from_cents(-5).to_string(), "-0.05");
        assert_eq!(Money::ZERO.to_string(), "0.00");
    }

    fn rec(kind: RevenueKind, cents: i64, slice: u64) -> RevenueRecord {
        RevenueRecord {
            at: SimTime::ZERO,
            slice: SliceId::new(slice),
            tenant: TenantId::new(0),
            kind,
            amount: Money::from_cents(cents),
        }
    }

    #[test]
    fn ledger_aggregates() {
        let mut l = RevenueLedger::new();
        l.book(rec(RevenueKind::AdmissionIncome, 10_000, 1));
        l.book(rec(RevenueKind::AdmissionIncome, 5_000, 2));
        l.book(rec(RevenueKind::SlaPenalty, -1_500, 1));
        l.book(rec(RevenueKind::SlaPenalty, -500, 1));
        l.book(rec(RevenueKind::EarlyTerminationRefund, -1_000, 2));

        assert_eq!(l.gross_income(), Money::from_cents(15_000));
        assert_eq!(l.total_penalties(), Money::from_cents(2_000));
        assert_eq!(l.net(), Money::from_cents(12_000));
        assert_eq!(l.net_for_slice(SliceId::new(1)), Money::from_cents(8_000));
        assert_eq!(l.net_for_slice(SliceId::new(2)), Money::from_cents(4_000));
        assert_eq!(l.net_for_slice(SliceId::new(9)), Money::ZERO);
        assert_eq!(l.penalty_count(), 2);
        assert_eq!(l.records().len(), 5);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-positive")]
    fn ledger_rejects_positive_penalty() {
        let mut l = RevenueLedger::new();
        l.book(rec(RevenueKind::SlaPenalty, 100, 1));
    }

    #[test]
    fn money_serde_round_trip() {
        let m = Money::from_cents(-4321);
        let j = serde_json::to_string(&m).unwrap();
        assert_eq!(serde_json::from_str::<Money>(&j).unwrap(), m);
    }
}
