//! Public Land Mobile Network identifiers.
//!
//! The demo's key trick for slicing a commercial RAN without slicing-aware
//! equipment: each admitted network slice is materialized as a *dedicated
//! PLMN* dynamically installed on the MOCN-sharing eNBs, so UEs select their
//! slice by PLMN id. A PLMN id is a 3-digit mobile country code (MCC) plus a
//! 2- or 3-digit mobile network code (MNC).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A PLMN identifier: MCC (3 digits) + MNC (2–3 digits).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PlmnId {
    mcc: u16,
    mnc: u16,
    /// MNC digit count (2 or 3): "001-01" and "001-001" are distinct PLMNs.
    mnc_digits: u8,
}

/// Error parsing or constructing a [`PlmnId`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlmnError {
    /// MCC out of the 3-digit range (0–999).
    BadMcc(u32),
    /// MNC out of range for the stated digit count.
    BadMnc(u32),
    /// MNC digit count was not 2 or 3.
    BadMncDigits(u8),
    /// String form was not `MCC-MNC`.
    BadFormat(String),
}

impl fmt::Display for PlmnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlmnError::BadMcc(v) => write!(f, "MCC {v} out of range 0..=999"),
            PlmnError::BadMnc(v) => write!(f, "MNC {v} out of range for digit count"),
            PlmnError::BadMncDigits(d) => write!(f, "MNC digit count {d} (must be 2 or 3)"),
            PlmnError::BadFormat(s) => write!(f, "malformed PLMN string {s:?}"),
        }
    }
}

impl std::error::Error for PlmnError {}

impl PlmnId {
    /// Construct with an explicit MNC digit count.
    pub fn new(mcc: u32, mnc: u32, mnc_digits: u8) -> Result<Self, PlmnError> {
        if mcc > 999 {
            return Err(PlmnError::BadMcc(mcc));
        }
        let limit = match mnc_digits {
            2 => 99,
            3 => 999,
            d => return Err(PlmnError::BadMncDigits(d)),
        };
        if mnc > limit {
            return Err(PlmnError::BadMnc(mnc));
        }
        Ok(PlmnId {
            mcc: mcc as u16,
            mnc: mnc as u16,
            mnc_digits,
        })
    }

    /// Two-digit-MNC constructor (the common European form the demo uses).
    pub fn new2(mcc: u32, mnc: u32) -> Result<Self, PlmnError> {
        Self::new(mcc, mnc, 2)
    }

    /// Mobile country code.
    pub fn mcc(self) -> u16 {
        self.mcc
    }

    /// Mobile network code.
    pub fn mnc(self) -> u16 {
        self.mnc
    }

    /// The test-network PLMN (MCC 001) assigned to the `n`-th slice.
    ///
    /// The demo dynamically installs one PLMN per slice; we allocate them
    /// from the reserved test range `001-01 … 001-99`.
    ///
    /// # Panics
    /// Panics if `n >= 99` (the eNB model enforces a far smaller per-cell
    /// PLMN budget long before this).
    pub fn test_slice_plmn(n: u64) -> PlmnId {
        assert!(n < 99, "test PLMN range exhausted");
        PlmnId::new2(1, (n + 1) as u32).expect("range-checked above")
    }
}

impl fmt::Debug for PlmnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:03}-{:0width$}",
            self.mcc,
            self.mnc,
            width = self.mnc_digits as usize
        )
    }
}

impl fmt::Display for PlmnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl FromStr for PlmnId {
    type Err = PlmnError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (mcc_s, mnc_s) = s
            .split_once('-')
            .ok_or_else(|| PlmnError::BadFormat(s.to_owned()))?;
        if mcc_s.len() != 3 || !(mnc_s.len() == 2 || mnc_s.len() == 3) {
            return Err(PlmnError::BadFormat(s.to_owned()));
        }
        let mcc: u32 = mcc_s
            .parse()
            .map_err(|_| PlmnError::BadFormat(s.to_owned()))?;
        let mnc: u32 = mnc_s
            .parse()
            .map_err(|_| PlmnError::BadFormat(s.to_owned()))?;
        PlmnId::new(mcc, mnc, mnc_s.len() as u8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_ranges() {
        assert!(PlmnId::new2(262, 1).is_ok());
        assert_eq!(PlmnId::new(1000, 1, 2), Err(PlmnError::BadMcc(1000)));
        assert_eq!(PlmnId::new(262, 100, 2), Err(PlmnError::BadMnc(100)));
        assert!(PlmnId::new(262, 100, 3).is_ok());
        assert_eq!(PlmnId::new(262, 1, 4), Err(PlmnError::BadMncDigits(4)));
    }

    #[test]
    fn display_pads_digits() {
        assert_eq!(format!("{}", PlmnId::new2(1, 1).unwrap()), "001-01");
        assert_eq!(format!("{}", PlmnId::new(262, 7, 3).unwrap()), "262-007");
    }

    #[test]
    fn mnc_digit_count_distinguishes_plmns() {
        let two = PlmnId::new(1, 1, 2).unwrap();
        let three = PlmnId::new(1, 1, 3).unwrap();
        assert_ne!(two, three);
    }

    #[test]
    fn parse_round_trips() {
        for s in ["001-01", "262-02", "310-410", "001-001"] {
            let p: PlmnId = s.parse().unwrap();
            assert_eq!(format!("{p}"), s);
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        for s in ["00101", "1-01", "001-1", "001-0001", "abc-01", "001-xy"] {
            assert!(s.parse::<PlmnId>().is_err(), "{s} should fail");
        }
    }

    #[test]
    fn test_slice_plmns_are_distinct() {
        let a = PlmnId::test_slice_plmn(0);
        let b = PlmnId::test_slice_plmn(1);
        assert_eq!(format!("{a}"), "001-01");
        assert_eq!(format!("{b}"), "001-02");
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn test_slice_plmn_range_is_bounded() {
        PlmnId::test_slice_plmn(99);
    }

    #[test]
    fn accessors() {
        let p = PlmnId::new2(262, 42).unwrap();
        assert_eq!(p.mcc(), 262);
        assert_eq!(p.mnc(), 42);
    }

    #[test]
    fn serde_round_trip() {
        let p = PlmnId::new(310, 410, 3).unwrap();
        let j = serde_json::to_string(&p).unwrap();
        assert_eq!(serde_json::from_str::<PlmnId>(&j).unwrap(), p);
    }
}
