//! Physical units used across the three resource domains of an end-to-end
//! slice: radio ([`Prbs`]), transport ([`RateMbps`], [`Latency`]) and cloud
//! ([`VCpus`], [`MemMb`], [`DiskGb`]).
//!
//! All are transparent newtypes so a PRB count can never be confused with a
//! vCPU count at a crate boundary. Continuous quantities are `f64`-backed;
//! discrete ones (`Prbs`, `VCpus`, `MemMb`, `DiskGb`) are integer-backed with
//! saturating subtraction, since resource accounting must never wrap.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Generates the shared impl surface for an `f64`-backed unit.
macro_rules! float_unit {
    ($name:ident, $doc:literal, $suffix:literal) => {
        #[doc = $doc]
        #[derive(Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: $name = $name(0.0);

            /// Construct from a raw value (negative inputs clamp to zero —
            /// a resource quantity is never negative).
            pub fn new(v: f64) -> Self {
                $name(if v.is_finite() && v > 0.0 { v } else { 0.0 })
            }

            /// The raw value.
            pub const fn value(self) -> f64 {
                self.0
            }

            /// True if this quantity is zero.
            pub fn is_zero(self) -> bool {
                self.0 == 0.0
            }

            /// The smaller of two quantities.
            pub fn min(self, other: Self) -> Self {
                $name(self.0.min(other.0))
            }

            /// The larger of two quantities.
            pub fn max(self, other: Self) -> Self {
                $name(self.0.max(other.0))
            }

            /// Subtraction clamped at zero.
            pub fn saturating_sub(self, other: Self) -> Self {
                $name((self.0 - other.0).max(0.0))
            }

            /// The ratio `self / other`, or 0 when `other` is zero.
            pub fn ratio(self, other: Self) -> f64 {
                if other.0 == 0.0 {
                    0.0
                } else {
                    self.0 / other.0
                }
            }
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, o: $name) -> $name {
                $name(self.0 + o.0)
            }
        }
        impl AddAssign for $name {
            fn add_assign(&mut self, o: $name) {
                self.0 += o.0;
            }
        }
        impl Sub for $name {
            type Output = $name;
            fn sub(self, o: $name) -> $name {
                $name::new(self.0 - o.0)
            }
        }
        impl SubAssign for $name {
            fn sub_assign(&mut self, o: $name) {
                *self = *self - o;
            }
        }
        impl Mul<f64> for $name {
            type Output = $name;
            fn mul(self, k: f64) -> $name {
                $name::new(self.0 * k)
            }
        }
        impl Div<f64> for $name {
            type Output = $name;
            fn div(self, k: f64) -> $name {
                $name::new(self.0 / k)
            }
        }
        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                iter.fold($name::ZERO, |a, b| a + b)
            }
        }
        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.3}{}", self.0, $suffix)
            }
        }
        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Debug::fmt(self, f)
            }
        }
    };
}

/// Generates the shared impl surface for an integer-backed unit.
macro_rules! int_unit {
    ($name:ident, $repr:ty, $doc:literal, $suffix:literal) => {
        #[doc = $doc]
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
        )]
        pub struct $name($repr);

        impl $name {
            /// The zero quantity.
            pub const ZERO: $name = $name(0);

            /// Construct from a raw count.
            pub const fn new(v: $repr) -> Self {
                $name(v)
            }

            /// The raw count.
            pub const fn value(self) -> $repr {
                self.0
            }

            /// True if this quantity is zero.
            pub const fn is_zero(self) -> bool {
                self.0 == 0
            }

            /// The smaller of two quantities.
            pub fn min(self, other: Self) -> Self {
                $name(self.0.min(other.0))
            }

            /// The larger of two quantities.
            pub fn max(self, other: Self) -> Self {
                $name(self.0.max(other.0))
            }

            /// Subtraction clamped at zero (resource accounting never wraps).
            pub fn saturating_sub(self, other: Self) -> Self {
                $name(self.0.saturating_sub(other.0))
            }

            /// Checked subtraction: `None` when `other` exceeds `self`.
            pub fn checked_sub(self, other: Self) -> Option<Self> {
                self.0.checked_sub(other.0).map($name)
            }

            /// Utilization fraction `self / capacity`, or 0 for zero capacity.
            pub fn ratio(self, capacity: Self) -> f64 {
                if capacity.0 == 0 {
                    0.0
                } else {
                    self.0 as f64 / capacity.0 as f64
                }
            }
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, o: $name) -> $name {
                $name(self.0 + o.0)
            }
        }
        impl AddAssign for $name {
            fn add_assign(&mut self, o: $name) {
                self.0 += o.0;
            }
        }
        impl Sub for $name {
            type Output = $name;
            fn sub(self, o: $name) -> $name {
                $name(self.0 - o.0)
            }
        }
        impl SubAssign for $name {
            fn sub_assign(&mut self, o: $name) {
                self.0 -= o.0;
            }
        }
        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                iter.fold($name::ZERO, |a, b| a + b)
            }
        }
        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", self.0, $suffix)
            }
        }
        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Debug::fmt(self, f)
            }
        }
    };
}

float_unit!(
    RateMbps,
    "Data rate in megabits per second: slice throughput demands, link capacities, delivered goodput.",
    "Mbps"
);

float_unit!(
    Latency,
    "One-way latency in milliseconds: slice SLA bounds and per-hop transport delays.",
    "ms"
);

int_unit!(
    Prbs,
    u32,
    "Physical Resource Blocks — the LTE radio resource unit the RAN controller reserves per PLMN/slice.",
    "PRB"
);

int_unit!(
    VCpus,
    u32,
    "Virtual CPU cores allocated to VNF instances in the edge/core data centers.",
    "vCPU"
);

int_unit!(
    MemMb,
    u64,
    "RAM in mebibytes allocated to VNF instances.",
    "MB"
);

int_unit!(
    DiskGb,
    u64,
    "Block storage in gibibytes allocated to VNF instances.",
    "GB"
);

impl RateMbps {
    /// Megabytes transferred over `seconds` at this rate (for load math).
    pub fn megabytes_over(self, seconds: f64) -> f64 {
        self.0 * seconds / 8.0
    }
}

impl Latency {
    /// Convert to a simulation duration.
    pub fn to_duration(self) -> ovnes_sim::SimDuration {
        ovnes_sim::SimDuration::from_millis_f64(self.0)
    }
}

impl Prbs {
    /// Tolerance for [`Prbs::for_rate`]: a quotient within this distance of
    /// an integer is treated as exact. PRB counts are small (hundreds), so
    /// any residue below this is float-division noise, not real demand.
    pub const RATE_EPSILON: f64 = 1e-9;

    /// PRBs needed to carry `throughput` when one PRB delivers `per_prb`.
    ///
    /// This is the single rounding rule for rate→PRB conversion across
    /// admission, allocation, overbooking, and scheduling. A naive
    /// `(t / r).ceil()` over-reserves on exactly-divisible rates — e.g.
    /// `1.2 / 0.4` is `3.0000000000000004` in f64, which plain `ceil`
    /// inflates to 4 PRBs and can silently flip an admission decision.
    /// Quotients within [`Prbs::RATE_EPSILON`] of an integer snap down.
    ///
    /// Degenerate inputs: zero `throughput` needs zero PRBs; a zero (or
    /// non-positive) `per_prb` cannot carry anything, so the need saturates
    /// at `u32::MAX` — callers that prefer to treat outage as "no demand"
    /// must guard before calling.
    pub fn for_rate(throughput: RateMbps, per_prb: RateMbps) -> Prbs {
        if throughput.value() <= 0.0 {
            return Prbs::ZERO;
        }
        if per_prb.value() <= 0.0 {
            return Prbs::new(u32::MAX);
        }
        let q = throughput.value() / per_prb.value();
        let floor = q.floor();
        let n = if q - floor < Self::RATE_EPSILON {
            floor
        } else {
            floor + 1.0
        };
        Prbs::new(n.min(u32::MAX as f64) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_unit_clamps_negative_and_nan() {
        assert_eq!(RateMbps::new(-5.0), RateMbps::ZERO);
        assert_eq!(RateMbps::new(f64::NAN), RateMbps::ZERO);
        assert_eq!(Latency::new(3.5).value(), 3.5);
    }

    #[test]
    fn float_arithmetic() {
        let a = RateMbps::new(100.0);
        let b = RateMbps::new(30.0);
        assert_eq!((a + b).value(), 130.0);
        assert_eq!((a - b).value(), 70.0);
        assert_eq!((b - a), RateMbps::ZERO, "subtraction clamps at zero");
        assert_eq!((a * 0.5).value(), 50.0);
        assert_eq!((a / 4.0).value(), 25.0);
        assert_eq!(a.saturating_sub(b).value(), 70.0);
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);
    }

    #[test]
    fn float_ratio_handles_zero_denominator() {
        assert_eq!(RateMbps::new(10.0).ratio(RateMbps::ZERO), 0.0);
        assert_eq!(RateMbps::new(30.0).ratio(RateMbps::new(60.0)), 0.5);
    }

    #[test]
    fn float_sum() {
        let total: RateMbps = [10.0, 20.0, 30.0].iter().map(|&v| RateMbps::new(v)).sum();
        assert_eq!(total.value(), 60.0);
    }

    #[test]
    fn int_arithmetic() {
        let a = Prbs::new(50);
        let b = Prbs::new(20);
        assert_eq!((a + b).value(), 70);
        assert_eq!((a - b).value(), 30);
        assert_eq!(b.saturating_sub(a), Prbs::ZERO);
        assert_eq!(a.checked_sub(b), Some(Prbs::new(30)));
        assert_eq!(b.checked_sub(a), None);
        assert_eq!(b.ratio(Prbs::new(100)), 0.2);
        assert_eq!(b.ratio(Prbs::ZERO), 0.0);
    }

    #[test]
    #[should_panic]
    fn int_plain_sub_underflow_panics_in_debug() {
        let _ = Prbs::new(1) - Prbs::new(2);
    }

    #[test]
    fn int_sum_and_ordering() {
        let total: VCpus = [1u32, 2, 3].iter().map(|&v| VCpus::new(v)).sum();
        assert_eq!(total, VCpus::new(6));
        assert!(MemMb::new(1024) < MemMb::new(2048));
        assert_eq!(DiskGb::new(10).max(DiskGb::new(4)), DiskGb::new(10));
    }

    #[test]
    fn display_uses_suffixes() {
        assert_eq!(format!("{}", RateMbps::new(12.5)), "12.500Mbps");
        assert_eq!(format!("{}", Latency::new(3.0)), "3.000ms");
        assert_eq!(format!("{}", Prbs::new(25)), "25PRB");
        assert_eq!(format!("{}", VCpus::new(4)), "4vCPU");
        assert_eq!(format!("{}", MemMb::new(2048)), "2048MB");
        assert_eq!(format!("{}", DiskGb::new(40)), "40GB");
    }

    #[test]
    fn rate_to_bytes() {
        // 8 Mbps for 2 seconds = 2 megabytes.
        assert_eq!(RateMbps::new(8.0).megabytes_over(2.0), 2.0);
    }

    #[test]
    fn latency_to_duration() {
        assert_eq!(Latency::new(2.5).to_duration().as_micros(), 2_500);
    }

    #[test]
    fn for_rate_snaps_float_noise_on_exact_divisions() {
        // 1.2 / 0.4 == 3.0000000000000004 in f64; a plain ceil says 4.
        assert_eq!(Prbs::for_rate(RateMbps::new(1.2), RateMbps::new(0.4)), Prbs::new(3));
        assert_eq!(Prbs::for_rate(RateMbps::new(0.4), RateMbps::new(0.4)), Prbs::new(1));
        assert_eq!(Prbs::for_rate(RateMbps::new(2.0), RateMbps::new(0.4)), Prbs::new(5));
        assert_eq!(Prbs::for_rate(RateMbps::new(0.3), RateMbps::new(0.1)), Prbs::new(3));
        assert_eq!(Prbs::for_rate(RateMbps::new(10.0), RateMbps::new(0.5)), Prbs::new(20));
    }

    #[test]
    fn for_rate_still_rounds_real_fractions_up() {
        assert_eq!(Prbs::for_rate(RateMbps::new(10.1), RateMbps::new(0.5)), Prbs::new(21));
        assert_eq!(Prbs::for_rate(RateMbps::new(0.01), RateMbps::new(0.5)), Prbs::new(1));
        assert_eq!(Prbs::for_rate(RateMbps::new(1.21), RateMbps::new(0.4)), Prbs::new(4));
    }

    #[test]
    fn for_rate_degenerate_inputs() {
        assert_eq!(Prbs::for_rate(RateMbps::ZERO, RateMbps::new(0.5)), Prbs::ZERO);
        assert_eq!(
            Prbs::for_rate(RateMbps::new(1.0), RateMbps::ZERO),
            Prbs::new(u32::MAX),
            "zero per-PRB rate saturates: nothing can carry the demand"
        );
        assert_eq!(Prbs::for_rate(RateMbps::ZERO, RateMbps::ZERO), Prbs::ZERO);
    }

    #[test]
    fn serde_round_trip() {
        let r = RateMbps::new(42.0);
        let j = serde_json::to_string(&r).unwrap();
        assert_eq!(serde_json::from_str::<RateMbps>(&j).unwrap(), r);
        let p = Prbs::new(7);
        let j = serde_json::to_string(&p).unwrap();
        assert_eq!(serde_json::from_str::<Prbs>(&j).unwrap(), p);
    }
}
