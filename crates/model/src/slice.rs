//! Network slice requests and service-level agreements.
//!
//! [`SliceRequest`] carries exactly the parameters the demo's dashboard form
//! collects when a tenant asks for a slice: *time duration, maximum latency
//! allowed, expected throughput, the price willing to be paid, and the
//! penalty expected in case of SLA violation* (§3 of the paper), plus the
//! slice class that determines how the vEPC is sized.

use crate::revenue::Money;
use crate::units::{DiskGb, Latency, MemMb, RateMbps, VCpus};
use crate::TenantId;
use ovnes_sim::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// 5G service categories; each maps to an SLA template and a vEPC sizing
/// profile. The demo's heterogeneous requests span these classes (vertical
/// industries: automotive → URLLC, e-health → URLLC/eMBB, media → eMBB,
/// metering → mMTC).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SliceClass {
    /// Enhanced mobile broadband: throughput-dominated.
    Embb,
    /// Ultra-reliable low-latency communication: latency-dominated.
    Urllc,
    /// Massive machine-type communication: many devices, thin flows.
    Mmtc,
}

impl SliceClass {
    /// All classes, in a fixed order (for sweeps and reports).
    pub const ALL: [SliceClass; 3] = [SliceClass::Embb, SliceClass::Urllc, SliceClass::Mmtc];

    /// Typical SLA template for the class (starting point for request
    /// generators; individual requests override freely).
    pub fn default_sla(self) -> Sla {
        match self {
            SliceClass::Embb => Sla {
                throughput: RateMbps::new(50.0),
                max_latency: Latency::new(50.0),
                availability: 0.99,
            },
            SliceClass::Urllc => Sla {
                throughput: RateMbps::new(5.0),
                max_latency: Latency::new(5.0),
                availability: 0.9999,
            },
            SliceClass::Mmtc => Sla {
                throughput: RateMbps::new(2.0),
                max_latency: Latency::new(100.0),
                availability: 0.95,
            },
        }
    }

    /// vEPC compute sizing for a slice of this class carrying `throughput`.
    ///
    /// Control-plane components (MME/HSS) scale with device count, the user
    /// plane (SGW/PGW) with throughput; the class encodes the device/traffic
    /// mix, so the profile differs per class.
    pub fn compute_demand(self, throughput: RateMbps) -> ComputeDemand {
        let tp = throughput.value();
        let (base_vcpu, vcpu_per_100mbps, base_mem, mem_per_100mbps) = match self {
            SliceClass::Embb => (2u32, 2.0, 2048u64, 2048.0),
            SliceClass::Urllc => (2, 4.0, 2048, 1024.0), // fast-path headroom
            SliceClass::Mmtc => (1, 1.0, 1024, 512.0),   // thin user plane
        };
        ComputeDemand {
            vcpus: VCpus::new(base_vcpu + (vcpu_per_100mbps * tp / 100.0).ceil() as u32),
            mem: MemMb::new(base_mem + (mem_per_100mbps * tp / 100.0).ceil() as u64),
            disk: DiskGb::new(10),
        }
    }

    /// Short lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            SliceClass::Embb => "embb",
            SliceClass::Urllc => "urllc",
            SliceClass::Mmtc => "mmtc",
        }
    }
}

impl fmt::Display for SliceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Service-level agreement of a slice.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Sla {
    /// Expected (committed) downlink throughput.
    pub throughput: RateMbps,
    /// Maximum end-to-end one-way latency.
    pub max_latency: Latency,
    /// Fraction of monitoring epochs in which the SLA must be met.
    pub availability: f64,
}

impl Sla {
    /// True if a delivered `(rate, latency)` pair satisfies the SLA.
    pub fn is_met(&self, delivered: RateMbps, latency: Latency) -> bool {
        delivered.value() >= self.throughput.value() && latency.value() <= self.max_latency.value()
    }
}

/// Cloud resources a slice's vEPC needs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComputeDemand {
    /// Virtual CPU cores.
    pub vcpus: VCpus,
    /// RAM.
    pub mem: MemMb,
    /// Block storage.
    pub disk: DiskGb,
}

/// A tenant's request for an end-to-end network slice — the dashboard form.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SliceRequest {
    /// The requesting tenant.
    pub tenant: TenantId,
    /// Service category.
    pub class: SliceClass,
    /// The SLA the tenant buys.
    pub sla: Sla,
    /// How long the slice should live once deployed.
    pub duration: SimDuration,
    /// Price the tenant pays if the slice is admitted and runs to term.
    pub price: Money,
    /// Penalty the provider owes per monitoring epoch in which the SLA is
    /// violated.
    pub penalty: Money,
    /// Whether the slice's traffic must terminate at the *edge* data center
    /// (low-latency services) rather than the core.
    pub needs_edge: bool,
}

impl SliceRequest {
    /// Start building a request for `tenant` of the given `class`, seeded
    /// with the class's default SLA and a 1-hour duration.
    pub fn builder(tenant: TenantId, class: SliceClass) -> SliceRequestBuilder {
        SliceRequestBuilder {
            tenant,
            class,
            sla: class.default_sla(),
            duration: SimDuration::from_hours(1),
            price: Money::from_units(100),
            penalty: Money::from_units(10),
            needs_edge: matches!(class, SliceClass::Urllc),
        }
    }

    /// Cloud demand implied by the class and committed throughput.
    pub fn compute_demand(&self) -> ComputeDemand {
        self.class.compute_demand(self.sla.throughput)
    }

    /// Revenue density: price per committed megabit-hour — the admission
    /// engine's greedy ordering key.
    pub fn revenue_density(&self) -> f64 {
        let mbit_hours = self.sla.throughput.value() * self.duration.as_secs_f64() / 3600.0;
        if mbit_hours <= 0.0 {
            return 0.0;
        }
        self.price.units() as f64 / mbit_hours
    }
}

impl SliceRequest {
    /// Preset: an automotive V2X slice (the demo's flagship vertical) —
    /// thin, hard-latency URLLC at the edge.
    pub fn automotive(tenant: TenantId) -> SliceRequest {
        SliceRequest::builder(tenant, SliceClass::Urllc)
            .throughput(RateMbps::new(5.0))
            .max_latency(Latency::new(5.0))
            .availability(0.9999)
            .price(Money::from_units(90))
            .penalty(Money::from_units(1))
            .build()
            .expect("preset parameters are valid")
    }

    /// Preset: an e-health remote-monitoring slice — URLLC with a slightly
    /// relaxed bound.
    pub fn e_health(tenant: TenantId) -> SliceRequest {
        SliceRequest::builder(tenant, SliceClass::Urllc)
            .throughput(RateMbps::new(8.0))
            .max_latency(Latency::new(10.0))
            .availability(0.999)
            .price(Money::from_units(70))
            .penalty(Money::from_units(1))
            .build()
            .expect("preset parameters are valid")
    }

    /// Preset: a media-streaming eMBB slice.
    pub fn media_streaming(tenant: TenantId) -> SliceRequest {
        SliceRequest::builder(tenant, SliceClass::Embb)
            .throughput(RateMbps::new(40.0))
            .max_latency(Latency::new(50.0))
            .price(Money::from_units(110))
            .penalty(Money::from_units(1))
            .build()
            .expect("preset parameters are valid")
    }

    /// Preset: a smart-metering mMTC slice.
    pub fn smart_metering(tenant: TenantId) -> SliceRequest {
        SliceRequest::builder(tenant, SliceClass::Mmtc)
            .throughput(RateMbps::new(2.0))
            .max_latency(Latency::new(100.0))
            .availability(0.95)
            .price(Money::from_units(25))
            .penalty(Money::from_units(1))
            .build()
            .expect("preset parameters are valid")
    }
}

/// Builder for [`SliceRequest`] with validation at [`build`](Self::build).
#[derive(Clone, Debug)]
pub struct SliceRequestBuilder {
    tenant: TenantId,
    class: SliceClass,
    sla: Sla,
    duration: SimDuration,
    price: Money,
    penalty: Money,
    needs_edge: bool,
}

/// Why a [`SliceRequestBuilder`] refused to build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// Throughput must be strictly positive.
    ZeroThroughput,
    /// Latency bound must be strictly positive.
    ZeroLatency,
    /// Duration must be strictly positive.
    ZeroDuration,
    /// Availability must lie in (0, 1].
    BadAvailability,
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::ZeroThroughput => f.write_str("expected throughput must be > 0"),
            RequestError::ZeroLatency => f.write_str("latency bound must be > 0"),
            RequestError::ZeroDuration => f.write_str("slice duration must be > 0"),
            RequestError::BadAvailability => f.write_str("availability must be in (0, 1]"),
        }
    }
}

impl std::error::Error for RequestError {}

impl SliceRequestBuilder {
    /// Set the committed throughput.
    pub fn throughput(mut self, rate: RateMbps) -> Self {
        self.sla.throughput = rate;
        self
    }

    /// Set the maximum allowed latency.
    pub fn max_latency(mut self, lat: Latency) -> Self {
        self.sla.max_latency = lat;
        self
    }

    /// Set the required availability (fraction of epochs meeting the SLA).
    pub fn availability(mut self, a: f64) -> Self {
        self.sla.availability = a;
        self
    }

    /// Set the slice lifetime.
    pub fn duration(mut self, d: SimDuration) -> Self {
        self.duration = d;
        self
    }

    /// Set the offered price.
    pub fn price(mut self, p: Money) -> Self {
        self.price = p;
        self
    }

    /// Set the per-epoch SLA violation penalty.
    pub fn penalty(mut self, p: Money) -> Self {
        self.penalty = p;
        self
    }

    /// Require (or waive) edge-datacenter termination.
    pub fn needs_edge(mut self, yes: bool) -> Self {
        self.needs_edge = yes;
        self
    }

    /// Validate and produce the request.
    pub fn build(self) -> Result<SliceRequest, RequestError> {
        if self.sla.throughput.is_zero() {
            return Err(RequestError::ZeroThroughput);
        }
        if self.sla.max_latency.is_zero() {
            return Err(RequestError::ZeroLatency);
        }
        if self.duration.is_zero() {
            return Err(RequestError::ZeroDuration);
        }
        if !(self.sla.availability > 0.0 && self.sla.availability <= 1.0) {
            return Err(RequestError::BadAvailability);
        }
        Ok(SliceRequest {
            tenant: self.tenant,
            class: self.class,
            sla: self.sla,
            duration: self.duration,
            price: self.price,
            penalty: self.penalty,
            needs_edge: self.needs_edge,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tenant() -> TenantId {
        TenantId::new(1)
    }

    #[test]
    fn builder_defaults_from_class() {
        let req = SliceRequest::builder(tenant(), SliceClass::Urllc).build().unwrap();
        assert_eq!(req.class, SliceClass::Urllc);
        assert_eq!(req.sla.max_latency, Latency::new(5.0));
        assert!(req.needs_edge, "URLLC defaults to edge termination");
        let embb = SliceRequest::builder(tenant(), SliceClass::Embb).build().unwrap();
        assert!(!embb.needs_edge);
    }

    #[test]
    fn builder_overrides() {
        let req = SliceRequest::builder(tenant(), SliceClass::Embb)
            .throughput(RateMbps::new(200.0))
            .max_latency(Latency::new(20.0))
            .availability(0.999)
            .duration(SimDuration::from_hours(4))
            .price(Money::from_units(500))
            .penalty(Money::from_units(50))
            .needs_edge(true)
            .build()
            .unwrap();
        assert_eq!(req.sla.throughput.value(), 200.0);
        assert_eq!(req.duration, SimDuration::from_hours(4));
        assert_eq!(req.price, Money::from_units(500));
        assert!(req.needs_edge);
    }

    #[test]
    fn builder_validates() {
        let base = SliceRequest::builder(tenant(), SliceClass::Embb);
        assert_eq!(
            base.clone().throughput(RateMbps::ZERO).build(),
            Err(RequestError::ZeroThroughput)
        );
        assert_eq!(
            base.clone().max_latency(Latency::ZERO).build(),
            Err(RequestError::ZeroLatency)
        );
        assert_eq!(
            base.clone().duration(SimDuration::ZERO).build(),
            Err(RequestError::ZeroDuration)
        );
        assert_eq!(
            base.clone().availability(0.0).build(),
            Err(RequestError::BadAvailability)
        );
        assert_eq!(
            base.clone().availability(1.5).build(),
            Err(RequestError::BadAvailability)
        );
        assert!(base.availability(1.0).build().is_ok());
    }

    #[test]
    fn sla_is_met_checks_both_axes() {
        let sla = Sla {
            throughput: RateMbps::new(10.0),
            max_latency: Latency::new(20.0),
            availability: 0.99,
        };
        assert!(sla.is_met(RateMbps::new(10.0), Latency::new(20.0)));
        assert!(!sla.is_met(RateMbps::new(9.9), Latency::new(5.0)));
        assert!(!sla.is_met(RateMbps::new(50.0), Latency::new(21.0)));
    }

    #[test]
    fn compute_demand_scales_with_throughput() {
        let small = SliceClass::Embb.compute_demand(RateMbps::new(10.0));
        let large = SliceClass::Embb.compute_demand(RateMbps::new(500.0));
        assert!(large.vcpus > small.vcpus);
        assert!(large.mem > small.mem);
    }

    #[test]
    fn urllc_buys_fast_path_headroom() {
        let urllc = SliceClass::Urllc.compute_demand(RateMbps::new(100.0));
        let mmtc = SliceClass::Mmtc.compute_demand(RateMbps::new(100.0));
        assert!(urllc.vcpus > mmtc.vcpus);
    }

    #[test]
    fn revenue_density_orders_requests() {
        let cheap = SliceRequest::builder(tenant(), SliceClass::Embb)
            .throughput(RateMbps::new(100.0))
            .price(Money::from_units(100))
            .build()
            .unwrap();
        let dense = SliceRequest::builder(tenant(), SliceClass::Embb)
            .throughput(RateMbps::new(10.0))
            .price(Money::from_units(100))
            .build()
            .unwrap();
        assert!(dense.revenue_density() > cheap.revenue_density());
    }

    #[test]
    fn class_labels_and_display() {
        assert_eq!(SliceClass::Embb.to_string(), "embb");
        assert_eq!(SliceClass::ALL.len(), 3);
    }

    #[test]
    fn vertical_presets_are_valid_and_distinct() {
        let t = tenant();
        let presets = [
            SliceRequest::automotive(t),
            SliceRequest::e_health(t),
            SliceRequest::media_streaming(t),
            SliceRequest::smart_metering(t),
        ];
        for r in &presets {
            assert!(r.sla.throughput.value() > 0.0);
            assert!(r.penalty < r.price);
        }
        assert!(presets[0].needs_edge && presets[1].needs_edge);
        assert!(!presets[2].needs_edge && !presets[3].needs_edge);
        assert!(presets[0].sla.max_latency < presets[2].sla.max_latency);
        assert_eq!(presets[3].class, SliceClass::Mmtc);
    }

    #[test]
    fn request_serde_round_trip() {
        let req = SliceRequest::builder(tenant(), SliceClass::Mmtc).build().unwrap();
        let j = serde_json::to_string(&req).unwrap();
        assert_eq!(serde_json::from_str::<SliceRequest>(&j).unwrap(), req);
    }
}
