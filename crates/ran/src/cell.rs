//! eNodeB and cell model with MOCN RAN sharing.
//!
//! An [`Enb`] broadcasts a set of PLMNs (the MOCN sharing model of the
//! demo's NEC MB4420 small cells) and holds a per-PLMN *PRB reservation*.
//! Installing a slice in the RAN = installing its PLMN on the serving eNBs
//! with the PRB share the orchestrator computed; overbooking shows up here
//! as the sum of *nominal* (SLA-peak) PRB needs exceeding the cell's grid
//! while the sum of *reserved* PRBs stays within it.

use crate::cqi::{prb_rate_mbps, Cqi};
use ovnes_model::{EnbId, Prbs, RateMbps, SliceId};
use ovnes_model::PlmnId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Radio configuration of a cell.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CellConfig {
    /// Channel bandwidth in MHz (one of 1.4, 3, 5, 10, 15, 20).
    pub bandwidth_mhz: f64,
    /// Number of spatial layers (1 = SISO, 2 = 2x2 MIMO, …). Scales the
    /// per-PRB rate.
    pub mimo_layers: u8,
    /// Maximum PLMNs the cell can broadcast simultaneously (MOCN limit;
    /// 6 per 3GPP SIB1).
    pub max_plmns: usize,
}

impl CellConfig {
    /// A 20 MHz, 2x2 MIMO cell broadcasting up to 6 PLMNs — the demo's
    /// small-cell class.
    pub fn default_20mhz() -> CellConfig {
        CellConfig {
            bandwidth_mhz: 20.0,
            mimo_layers: 2,
            max_plmns: 6,
        }
    }

    /// PRB grid size for the configured bandwidth (3GPP TS 36.101).
    ///
    /// # Panics
    /// Panics on a non-standard bandwidth.
    pub fn total_prbs(&self) -> Prbs {
        let n = match self.bandwidth_mhz {
            b if (b - 1.4).abs() < 1e-9 => 6,
            b if (b - 3.0).abs() < 1e-9 => 15,
            b if (b - 5.0).abs() < 1e-9 => 25,
            b if (b - 10.0).abs() < 1e-9 => 50,
            b if (b - 15.0).abs() < 1e-9 => 75,
            b if (b - 20.0).abs() < 1e-9 => 100,
            other => panic!("non-standard LTE bandwidth {other} MHz"),
        };
        Prbs::new(n)
    }

    /// Per-PRB rate at `cqi`, including the MIMO layer gain.
    pub fn prb_rate(&self, cqi: Cqi) -> RateMbps {
        RateMbps::new(prb_rate_mbps(cqi) * self.mimo_layers as f64)
    }

    /// Cell capacity at a uniform `cqi`.
    pub fn capacity_at(&self, cqi: Cqi) -> RateMbps {
        self.prb_rate(cqi) * self.total_prbs().value() as f64
    }

    /// Precompute [`prb_rate`](Self::prb_rate) for every CQI. The per-UE
    /// channel-sampling sweep looks a rate up per UE per epoch; at 100k UEs
    /// the MCS table walk and MIMO multiply are worth paying once here
    /// instead. Entries are the exact `prb_rate` values, so table lookups
    /// are bit-identical to computing on the fly.
    pub fn rate_table(&self) -> PrbRateTable {
        let mut rates = [RateMbps::ZERO; 16];
        for idx in 1..=15u8 {
            let cqi = Cqi::new(idx).expect("1..=15 is a valid CQI");
            rates[idx as usize] = self.prb_rate(cqi);
        }
        PrbRateTable { rates }
    }
}

/// Per-PRB rate for each CQI index under one cell profile (see
/// [`CellConfig::rate_table`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PrbRateTable {
    /// Indexed by CQI index; slot 0 is unused (CQI 0 = outage).
    rates: [RateMbps; 16],
}

impl PrbRateTable {
    /// The per-PRB rate at `cqi`.
    pub fn rate(&self, cqi: Cqi) -> RateMbps {
        self.rates[cqi.index() as usize]
    }
}

/// A PLMN installed on an eNB on behalf of a slice.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PlmnReservation {
    /// The broadcast PLMN.
    pub plmn: PlmnId,
    /// The slice this PLMN materializes.
    pub slice: SliceId,
    /// PRBs reserved (guaranteed) for this PLMN each epoch.
    pub reserved: Prbs,
    /// Nominal PRBs the slice's SLA peak would need — what a non-overbooking
    /// deployment would have reserved. `reserved <= nominal` is the
    /// overbooking headroom.
    pub nominal: Prbs,
}

/// Errors from eNB slice operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RanError {
    /// The PLMN broadcast budget (SIB1 limit) is exhausted.
    PlmnBudgetExhausted {
        /// The configured limit.
        max: usize,
    },
    /// Not enough unreserved PRBs.
    InsufficientPrbs {
        /// PRBs requested.
        requested: Prbs,
        /// PRBs still unreserved.
        available: Prbs,
    },
    /// The PLMN (slice) is already installed on this eNB.
    AlreadyInstalled(SliceId),
    /// No such slice installed on this eNB.
    NotInstalled(SliceId),
}

impl fmt::Display for RanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RanError::PlmnBudgetExhausted { max } => {
                write!(f, "cell already broadcasts its maximum of {max} PLMNs")
            }
            RanError::InsufficientPrbs { requested, available } => {
                write!(f, "requested {requested} but only {available} unreserved")
            }
            RanError::AlreadyInstalled(s) => write!(f, "slice {s} already installed"),
            RanError::NotInstalled(s) => write!(f, "slice {s} not installed"),
        }
    }
}

impl std::error::Error for RanError {}

/// An eNodeB with MOCN sharing: one cell, several PLMNs, per-PLMN PRB
/// reservations.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Enb {
    id: EnbId,
    config: CellConfig,
    /// Installed reservations, keyed by slice for deterministic iteration.
    reservations: BTreeMap<SliceId, PlmnReservation>,
}

impl Enb {
    /// A new eNB with the given cell configuration and no PLMNs installed.
    pub fn new(id: EnbId, config: CellConfig) -> Enb {
        Enb {
            id,
            config,
            reservations: BTreeMap::new(),
        }
    }

    /// This eNB's id.
    pub fn id(&self) -> EnbId {
        self.id
    }

    /// The cell configuration.
    pub fn config(&self) -> &CellConfig {
        &self.config
    }

    /// Total PRB grid of the cell.
    pub fn total_prbs(&self) -> Prbs {
        self.config.total_prbs()
    }

    /// PRBs currently reserved across all installed PLMNs.
    pub fn reserved_prbs(&self) -> Prbs {
        self.reservations.values().map(|r| r.reserved).sum()
    }

    /// PRBs not yet reserved.
    pub fn available_prbs(&self) -> Prbs {
        self.total_prbs().saturating_sub(self.reserved_prbs())
    }

    /// Sum of nominal (SLA-peak) PRB needs of installed slices. When this
    /// exceeds [`total_prbs`](Self::total_prbs) the cell is overbooked.
    pub fn nominal_prbs(&self) -> Prbs {
        self.reservations.values().map(|r| r.nominal).sum()
    }

    /// Overbooking factor: nominal / grid. 1.0 means fully booked with no
    /// overbooking; above 1.0 the cell is overbooked.
    pub fn overbooking_factor(&self) -> f64 {
        self.nominal_prbs().ratio(self.total_prbs())
    }

    /// Install a slice's PLMN with `reserved` PRBs (`nominal` records the
    /// non-overbooked need for gain accounting).
    pub fn install_plmn(
        &mut self,
        slice: SliceId,
        plmn: PlmnId,
        reserved: Prbs,
        nominal: Prbs,
    ) -> Result<(), RanError> {
        if self.reservations.contains_key(&slice) {
            return Err(RanError::AlreadyInstalled(slice));
        }
        if self.reservations.len() >= self.config.max_plmns {
            return Err(RanError::PlmnBudgetExhausted {
                max: self.config.max_plmns,
            });
        }
        let available = self.available_prbs();
        if reserved > available {
            return Err(RanError::InsufficientPrbs {
                requested: reserved,
                available,
            });
        }
        self.reservations.insert(
            slice,
            PlmnReservation {
                plmn,
                slice,
                reserved,
                nominal,
            },
        );
        Ok(())
    }

    /// Resize an installed slice's reservation (the overbooking engine's
    /// periodic reconfiguration path).
    pub fn resize_reservation(&mut self, slice: SliceId, reserved: Prbs) -> Result<(), RanError> {
        // Capacity check against the grid minus everyone else's reservation.
        let others: Prbs = self
            .reservations
            .values()
            .filter(|r| r.slice != slice)
            .map(|r| r.reserved)
            .sum();
        if !self.reservations.contains_key(&slice) {
            return Err(RanError::NotInstalled(slice));
        }
        let available = self.total_prbs().saturating_sub(others);
        if reserved > available {
            return Err(RanError::InsufficientPrbs {
                requested: reserved,
                available,
            });
        }
        self.reservations
            .get_mut(&slice)
            .expect("checked above")
            .reserved = reserved;
        Ok(())
    }

    /// Remove a slice's PLMN, freeing its PRBs.
    pub fn release_plmn(&mut self, slice: SliceId) -> Result<PlmnReservation, RanError> {
        self.reservations
            .remove(&slice)
            .ok_or(RanError::NotInstalled(slice))
    }

    /// The reservation for `slice`, if installed.
    pub fn reservation(&self, slice: SliceId) -> Option<&PlmnReservation> {
        self.reservations.get(&slice)
    }

    /// All installed reservations in slice-id order.
    pub fn reservations(&self) -> impl Iterator<Item = &PlmnReservation> {
        self.reservations.values()
    }

    /// Number of PLMNs currently broadcast.
    pub fn plmn_count(&self) -> usize {
        self.reservations.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enb() -> Enb {
        Enb::new(EnbId::new(0), CellConfig::default_20mhz())
    }

    fn plmn(n: u64) -> PlmnId {
        PlmnId::test_slice_plmn(n)
    }

    #[test]
    fn prb_grid_matches_3gpp() {
        let grids = [(1.4, 6u32), (3.0, 15), (5.0, 25), (10.0, 50), (15.0, 75), (20.0, 100)];
        for (bw, prbs) in grids {
            let cfg = CellConfig {
                bandwidth_mhz: bw,
                mimo_layers: 1,
                max_plmns: 6,
            };
            assert_eq!(cfg.total_prbs(), Prbs::new(prbs));
        }
    }

    #[test]
    #[should_panic(expected = "non-standard")]
    fn odd_bandwidth_rejected() {
        CellConfig { bandwidth_mhz: 7.0, mimo_layers: 1, max_plmns: 6 }.total_prbs();
    }

    #[test]
    fn mimo_scales_rate() {
        let siso = CellConfig { mimo_layers: 1, ..CellConfig::default_20mhz() };
        let mimo = CellConfig::default_20mhz();
        let cqi = Cqi::new(15).unwrap();
        assert!((mimo.prb_rate(cqi).value() - 2.0 * siso.prb_rate(cqi).value()).abs() < 1e-12);
        // 20 MHz 2x2 at CQI 15 ≈ 146 Mbps — the familiar LTE cat-4 figure.
        let cap = mimo.capacity_at(cqi).value();
        assert!((cap - 146.6).abs() < 1.0, "got {cap}");
    }

    #[test]
    fn rate_table_matches_prb_rate_bit_for_bit() {
        for cfg in [
            CellConfig::default_20mhz(),
            CellConfig { mimo_layers: 1, bandwidth_mhz: 5.0, max_plmns: 6 },
        ] {
            let table = cfg.rate_table();
            for idx in 1..=15u8 {
                let cqi = Cqi::new(idx).unwrap();
                assert_eq!(
                    table.rate(cqi).value().to_bits(),
                    cfg.prb_rate(cqi).value().to_bits(),
                    "CQI {idx}"
                );
            }
        }
    }

    #[test]
    fn install_and_release_round_trip() {
        let mut e = enb();
        e.install_plmn(SliceId::new(1), plmn(0), Prbs::new(30), Prbs::new(40)).unwrap();
        assert_eq!(e.reserved_prbs(), Prbs::new(30));
        assert_eq!(e.available_prbs(), Prbs::new(70));
        assert_eq!(e.nominal_prbs(), Prbs::new(40));
        assert_eq!(e.plmn_count(), 1);
        let r = e.release_plmn(SliceId::new(1)).unwrap();
        assert_eq!(r.reserved, Prbs::new(30));
        assert_eq!(e.reserved_prbs(), Prbs::ZERO);
        assert_eq!(e.plmn_count(), 0);
    }

    #[test]
    fn double_install_rejected() {
        let mut e = enb();
        e.install_plmn(SliceId::new(1), plmn(0), Prbs::new(10), Prbs::new(10)).unwrap();
        assert_eq!(
            e.install_plmn(SliceId::new(1), plmn(1), Prbs::new(10), Prbs::new(10)),
            Err(RanError::AlreadyInstalled(SliceId::new(1)))
        );
    }

    #[test]
    fn prb_exhaustion_rejected() {
        let mut e = enb();
        e.install_plmn(SliceId::new(1), plmn(0), Prbs::new(80), Prbs::new(80)).unwrap();
        assert_eq!(
            e.install_plmn(SliceId::new(2), plmn(1), Prbs::new(30), Prbs::new(30)),
            Err(RanError::InsufficientPrbs {
                requested: Prbs::new(30),
                available: Prbs::new(20)
            })
        );
    }

    #[test]
    fn plmn_budget_enforced() {
        let mut e = Enb::new(
            EnbId::new(0),
            CellConfig { max_plmns: 2, ..CellConfig::default_20mhz() },
        );
        e.install_plmn(SliceId::new(1), plmn(0), Prbs::new(10), Prbs::new(10)).unwrap();
        e.install_plmn(SliceId::new(2), plmn(1), Prbs::new(10), Prbs::new(10)).unwrap();
        assert_eq!(
            e.install_plmn(SliceId::new(3), plmn(2), Prbs::new(10), Prbs::new(10)),
            Err(RanError::PlmnBudgetExhausted { max: 2 })
        );
    }

    #[test]
    fn resize_up_and_down() {
        let mut e = enb();
        e.install_plmn(SliceId::new(1), plmn(0), Prbs::new(30), Prbs::new(50)).unwrap();
        e.install_plmn(SliceId::new(2), plmn(1), Prbs::new(40), Prbs::new(40)).unwrap();
        e.resize_reservation(SliceId::new(1), Prbs::new(60)).unwrap();
        assert_eq!(e.reservation(SliceId::new(1)).unwrap().reserved, Prbs::new(60));
        // 60 + 40 = 100: full. Growing slice 2 must fail.
        assert!(matches!(
            e.resize_reservation(SliceId::new(2), Prbs::new(41)),
            Err(RanError::InsufficientPrbs { .. })
        ));
        e.resize_reservation(SliceId::new(1), Prbs::new(5)).unwrap();
        assert_eq!(e.available_prbs(), Prbs::new(55));
    }

    #[test]
    fn resize_missing_slice_errors() {
        let mut e = enb();
        assert_eq!(
            e.resize_reservation(SliceId::new(9), Prbs::new(1)),
            Err(RanError::NotInstalled(SliceId::new(9)))
        );
        assert!(e.release_plmn(SliceId::new(9)).is_err());
    }

    #[test]
    fn overbooking_factor_reflects_nominal_load() {
        let mut e = enb();
        // Reserved 60 PRBs, but nominal (peak) need is 140 → factor 1.4.
        e.install_plmn(SliceId::new(1), plmn(0), Prbs::new(30), Prbs::new(70)).unwrap();
        e.install_plmn(SliceId::new(2), plmn(1), Prbs::new(30), Prbs::new(70)).unwrap();
        assert!((e.overbooking_factor() - 1.4).abs() < 1e-12);
        assert_eq!(e.reserved_prbs(), Prbs::new(60), "grid itself is not oversubscribed");
    }
}
