//! # ovnes-ran — the radio access domain of the testbed
//!
//! Simulated counterpart of the demo's two commercial LTE eNodeBs (NEC
//! MB4420) with MOCN RAN sharing: since no commercial slicing equipment
//! exists, *network slices are mapped onto dedicated PLMNs dynamically
//! installed in the network* (§2 of the paper) with radio resources (PRBs)
//! reserved per PLMN.
//!
//! * [`cqi`] — 3GPP link adaptation: SNR → CQI → spectral efficiency →
//!   per-PRB rate.
//! * [`cell`] — eNB/cell model: bandwidth → PRB grid, MOCN multi-PLMN
//!   broadcast, per-PLMN PRB reservations.
//! * [`ue`] — user equipment with a log-distance pathloss + shadowing
//!   channel, mobility, attach/detach lifecycle.
//! * [`scheduler`] — per-epoch PRB allocation among slices: reservations are
//!   guaranteed, idle reserved PRBs are lent to saturated slices
//!   (the statistical multiplexing of ref \[1\]).
//! * [`ue_scheduler`] — proportional-fair division of a slice's PRBs among
//!   its UEs: a heap-based O(PRBs log UEs) grant loop over dense per-slice
//!   UE slabs, bit-identical to the retained per-PRB reference oracle.
//! * [`controller`] — the RAN domain controller the E2E orchestrator talks
//!   to: PLMN install/release, capacity queries, utilization telemetry.
//! * [`rpc`] — the controller as a *server task*: its REST surface served
//!   over framed TCP, so the orchestrator reaches it across a real process
//!   boundary as in the testbed.
//!
//! ## Example: install two overbooked slices and schedule one epoch
//!
//! ```
//! use ovnes_model::{EnbId, PlmnId, Prbs, RateMbps, SliceId};
//! use ovnes_ran::controller::OfferedLoad;
//! use ovnes_ran::{CellConfig, Enb, RanController};
//! use ovnes_sim::SimTime;
//!
//! let cell = CellConfig::default_20mhz(); // 100 PRBs, 2x2 MIMO
//! let mut ran = RanController::new(vec![Enb::new(EnbId::new(0), cell)]);
//!
//! // Two slices whose SLA peaks (nominal) sum to 140 PRBs — 1.4x the grid —
//! // but whose overbooked reservations (50 + 40) fit: the MOCN trick.
//! ran.install(EnbId::new(0), SliceId::new(1), PlmnId::test_slice_plmn(0),
//!             Prbs::new(50), Prbs::new(80)).unwrap();
//! ran.install(EnbId::new(0), SliceId::new(2), PlmnId::test_slice_plmn(1),
//!             Prbs::new(40), Prbs::new(60)).unwrap();
//! let snapshot = ran.snapshot();
//! assert!((snapshot.enbs[0].overbooking_factor - 1.4).abs() < 1e-9);
//!
//! // Slice 1 is idle this epoch; the scheduler lends its PRBs to slice 2.
//! let outcomes = ran.run_epoch(SimTime::ZERO, &[
//!     OfferedLoad { slice: SliceId::new(1), offered: RateMbps::new(0.0),
//!                   prb_rate: RateMbps::new(0.5) },
//!     OfferedLoad { slice: SliceId::new(2), offered: RateMbps::new(30.0),
//!                   prb_rate: RateMbps::new(0.5) },
//! ]);
//! assert_eq!(outcomes[1].borrowed, Prbs::new(20)); // 60 needed, 40 reserved
//! assert_eq!(outcomes[1].delivered, RateMbps::new(30.0));
//! ```

pub mod cell;
pub mod controller;
pub mod cqi;
pub mod rpc;
pub mod scheduler;
pub mod ue;
pub mod ue_scheduler;

pub use cell::{CellConfig, Enb, PlmnReservation, PrbRateTable, RanError};
pub use controller::{RanController, RanControllerState, RanSnapshot};
pub use cqi::{prb_rate_mbps, snr_to_cqi, Cqi, CQI_TABLE};
pub use scheduler::{
    schedule_epoch, schedule_epoch_into, SliceLoad, SliceScheduleOutcome, SliceScratch,
};
pub use ue::{slice_average_cqi, ChannelModel, MobilityModel, Ue, UePopulation};
pub use ue_scheduler::{jain_index, PfScratch, PfState, UeChannel, UeShare};
