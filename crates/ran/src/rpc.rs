//! The RAN controller as a server task: the domain's REST surface behind a
//! real socket (see `ovnes_api::rpc`).
//!
//! Two surfaces, matching the two ways the orchestrator talks to a domain:
//!
//! * [`control_router`] — just `ran/health` + `ran/monitoring` with the
//!   canonical shared handlers, byte-identical to the in-process control
//!   plane's registrations. This is what the deterministic scenario runs
//!   against over RPC.
//! * [`command_router`] — a full stateful domain server: `ran/command`
//!   decodes [`RanCommand`]s and drives a real [`RanController`] (install /
//!   resize / release), and `ran/monitoring` publishes the controller's
//!   live metric snapshot instead of echoing.

use crate::{RanController, RanControllerState};
use ovnes_api::rpc::{register_control_endpoints, Router, RpcServer, ServerStats};
use ovnes_api::{decode, encode, MonitoringReport, RanCommand, RanReply, Response, ResyncReport};
use ovnes_sim::SimTime;
use std::io;
use std::sync::{Arc, Mutex};

/// The endpoint prefix this domain serves under.
pub const DOMAIN: &str = "ran";

/// The control-plane surface (`ran/health`, `ran/monitoring`) with the
/// canonical shared handlers.
pub fn control_router() -> Router {
    let mut router = Router::new();
    register_control_endpoints(&mut router, DOMAIN);
    router
}

/// Serve [`control_router`] on a loopback server task.
pub fn serve_control() -> io::Result<RpcServer> {
    RpcServer::spawn(control_router())
}

/// A full domain router: the control surface plus `ran/command` driving
/// `controller`, `ran/monitoring` reporting its live metrics, and
/// `ran/resync` exporting its complete state for a restarted incarnation.
pub fn command_router(controller: RanController) -> Router {
    command_router_incarnation(controller, 1)
}

/// [`command_router`] serving as incarnation `term` — the term is baked
/// into every `ran/resync` report so a supervisor can prove which
/// incarnation's state it replayed.
pub fn command_router_incarnation(controller: RanController, term: u64) -> Router {
    let controller = Arc::new(Mutex::new(controller));
    let mut router = control_router();

    let ran = controller.clone();
    router.register("ran/command", move |req| {
        let cmd: RanCommand = match decode(&req.body) {
            Ok(c) => c,
            Err(e) => return Response::error(req.id, &e.to_string()),
        };
        let mut ran = ran.lock().unwrap_or_else(|p| p.into_inner());
        let result = match cmd {
            RanCommand::InstallPlmn {
                enb,
                slice,
                plmn,
                reserved,
                nominal,
            } => ran
                .install(enb, slice, plmn, reserved, nominal)
                .map(|()| RanReply::Done),
            RanCommand::Resize { slice, reserved } => {
                ran.resize(slice, reserved).map(|()| RanReply::Done)
            }
            RanCommand::Release { slice } => ran.release(slice).map(|r| RanReply::Released {
                freed: r.reserved,
            }),
        };
        match result {
            Ok(reply) => Response::ok(req.id, encode(&reply).expect("encodable")),
            Err(e) => Response::rejected(req.id, e.to_string().into_bytes()),
        }
    });

    let ran = controller.clone();
    router.register("ran/monitoring", move |req| {
        let scalars = ran
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .metrics()
            .scalar_snapshot();
        let report = MonitoringReport {
            domain: DOMAIN.into(),
            at: SimTime::ZERO,
            scalars,
        };
        Response::ok(req.id, encode(&report).expect("encodable"))
    });

    let ran = controller;
    router.register("ran/resync", move |req| {
        let ran = ran.lock().unwrap_or_else(|p| p.into_inner());
        let report = ResyncReport {
            domain: DOMAIN.into(),
            term,
            state: encode(&ran.export_state()).expect("encodable"),
        };
        Response::ok(req.id, encode(&report).expect("encodable"))
    });
    router
}

/// Serve [`command_router`] on a loopback server task, taking ownership of
/// the controller (it now lives behind the socket, as in the testbed).
pub fn serve(controller: RanController) -> io::Result<RpcServer> {
    RpcServer::spawn(command_router(controller))
}

/// Restart the command server from a resynced state: a fresh incarnation
/// serving `term`, seeded from `state` and resuming `carry`'s lifetime
/// counters. This is the supervision layer's restore path for a stateful
/// domain server.
pub fn serve_resumed(
    state: &RanControllerState,
    term: u64,
    carry: ServerStats,
) -> io::Result<RpcServer> {
    RpcServer::spawn_incarnation(
        command_router_incarnation(RanController::from_state(state), term),
        term,
        carry,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CellConfig, Enb};
    use ovnes_api::{SocketBus, Status};
    use ovnes_model::{EnbId, PlmnId, Prbs, SliceId};

    fn testbed_ran() -> RanController {
        RanController::new(vec![
            Enb::new(EnbId::new(0), CellConfig::default_20mhz()),
            Enb::new(EnbId::new(1), CellConfig::default_20mhz()),
        ])
    }

    #[test]
    fn install_resize_release_over_the_socket() {
        let server = serve(testbed_ran()).unwrap();
        let mut bus = SocketBus::new();
        bus.attach(&server);

        let call = |bus: &mut SocketBus, cmd: &RanCommand| {
            bus.call("ran/command", encode(cmd).unwrap()).unwrap()
        };

        // Install fills 60 of 100 PRBs; a second 60-PRB slice is rejected.
        let resp = call(
            &mut bus,
            &RanCommand::InstallPlmn {
                enb: EnbId::new(0),
                slice: SliceId::new(1),
                plmn: PlmnId::test_slice_plmn(0),
                reserved: Prbs::new(60),
                nominal: Prbs::new(60),
            },
        );
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(decode::<RanReply>(&resp.body).unwrap(), RanReply::Done);

        let resp = call(
            &mut bus,
            &RanCommand::InstallPlmn {
                enb: EnbId::new(0),
                slice: SliceId::new(2),
                plmn: PlmnId::test_slice_plmn(1),
                reserved: Prbs::new(60),
                nominal: Prbs::new(60),
            },
        );
        assert_eq!(resp.status, Status::Rejected);

        // Overbooking reconfiguration makes room; the retry fits.
        let resp = call(
            &mut bus,
            &RanCommand::Resize {
                slice: SliceId::new(1),
                reserved: Prbs::new(35),
            },
        );
        assert_eq!(resp.status, Status::Ok);
        let resp = call(
            &mut bus,
            &RanCommand::InstallPlmn {
                enb: EnbId::new(0),
                slice: SliceId::new(2),
                plmn: PlmnId::test_slice_plmn(1),
                reserved: Prbs::new(60),
                nominal: Prbs::new(60),
            },
        );
        assert_eq!(resp.status, Status::Ok);

        let resp = call(&mut bus, &RanCommand::Release { slice: SliceId::new(1) });
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(
            decode::<RanReply>(&resp.body).unwrap(),
            RanReply::Released {
                freed: Prbs::new(35)
            }
        );
    }

    #[test]
    fn monitoring_reports_live_controller_metrics() {
        let server = serve(testbed_ran()).unwrap();
        let mut bus = SocketBus::new();
        bus.attach(&server);
        bus.call(
            "ran/command",
            encode(&RanCommand::InstallPlmn {
                enb: EnbId::new(0),
                slice: SliceId::new(1),
                plmn: PlmnId::test_slice_plmn(0),
                reserved: Prbs::new(10),
                nominal: Prbs::new(10),
            })
            .unwrap(),
        )
        .unwrap();
        let resp = bus.call("ran/monitoring", Vec::new()).unwrap();
        let report: MonitoringReport = decode(&resp.body).unwrap();
        assert_eq!(report.domain, "ran");
        assert!(!report.scalars.is_empty());
    }

    #[test]
    fn undecodable_command_is_an_error_status() {
        let server = serve(testbed_ran()).unwrap();
        let mut bus = SocketBus::new();
        bus.attach(&server);
        let resp = bus.call("ran/command", b"garbage".to_vec()).unwrap();
        assert_eq!(resp.status, Status::Error);
    }

    #[test]
    fn resync_round_trip_restores_state_in_a_new_incarnation() {
        let mut server = serve(testbed_ran()).unwrap();
        assert_eq!(server.term(), 1);
        let mut bus = SocketBus::new();
        bus.attach(&server);

        // Fill 60 of 100 PRBs on eNB 0.
        let resp = bus
            .call(
                "ran/command",
                encode(&RanCommand::InstallPlmn {
                    enb: EnbId::new(0),
                    slice: SliceId::new(1),
                    plmn: PlmnId::test_slice_plmn(0),
                    reserved: Prbs::new(60),
                    nominal: Prbs::new(60),
                })
                .unwrap(),
            )
            .unwrap();
        assert_eq!(resp.status, Status::Ok);

        // Pull the controller's state over the wire, then kill the server.
        let resp = bus.call("ran/resync", Vec::new()).unwrap();
        let report: ResyncReport = decode(&resp.body).unwrap();
        assert_eq!(report.domain, "ran");
        assert_eq!(report.term, 1);
        let state: crate::RanControllerState = decode(&report.state).unwrap();
        let carry = server.stats();
        server.shutdown();
        drop(server);

        // A fresh incarnation seeded from the resync report remembers the
        // install: a second 60-PRB slice still does not fit.
        let restarted = serve_resumed(&state, 2, carry).unwrap();
        assert_eq!(restarted.term(), 2);
        assert!(restarted.stats().connections >= carry.connections);
        bus.attach(&restarted);
        bus.fence("ran", 2);
        let resp = bus
            .call(
                "ran/command",
                encode(&RanCommand::InstallPlmn {
                    enb: EnbId::new(0),
                    slice: SliceId::new(2),
                    plmn: PlmnId::test_slice_plmn(1),
                    reserved: Prbs::new(60),
                    nominal: Prbs::new(60),
                })
                .unwrap(),
            )
            .unwrap();
        assert_eq!(resp.status, Status::Rejected, "capacity was not restored");
    }
}
