//! Intra-slice scheduling: dividing a slice's allocated PRBs among its UEs.
//!
//! [`schedule_epoch`](crate::scheduler::schedule_epoch) decides how many
//! PRBs each *slice* gets; this module decides how each slice spends them
//! on its *UEs* with the classic proportional-fair (PF) rule: each PRB
//! round goes to the UE maximizing `instantaneous_rate / average_rate`, so
//! cell-edge UEs are not starved (as max-rate would) while good channels
//! are still favored (unlike round-robin).
//!
//! PF state (the throughput average) persists across epochs in
//! [`PfState`]; the demo's per-slice QoS is the aggregate, but per-UE
//! fairness determines whether *every* device in a vertical's fleet works.

use crate::cqi::Cqi;
use ovnes_model::{Prbs, RateMbps, UeId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One UE's channel state this epoch, as input to PF.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UeChannel {
    /// The UE.
    pub ue: UeId,
    /// Its achievable CQI this epoch (`None` = outage: unschedulable).
    pub cqi: Option<Cqi>,
    /// Rate one PRB carries at that CQI (cell profile applied).
    pub prb_rate: RateMbps,
}

/// One UE's share of the slice's PRBs this epoch.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct UeShare {
    /// The UE.
    pub ue: UeId,
    /// PRBs granted.
    pub prbs: Prbs,
    /// Rate achieved with them.
    pub rate: RateMbps,
}

/// Persistent proportional-fair state: exponentially averaged per-UE
/// throughput.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PfState {
    /// Averaged throughput per UE (Mbps).
    averages: BTreeMap<UeId, f64>,
}

impl PfState {
    /// Fresh state (all averages start at zero → first epoch is rate-blind
    /// and therefore fair by construction).
    pub fn new() -> PfState {
        Self::default()
    }

    /// The current throughput average of `ue` (0 if never scheduled).
    pub fn average(&self, ue: UeId) -> f64 {
        self.averages.get(&ue).copied().unwrap_or(0.0)
    }

    /// Drop state for UEs that left the slice.
    pub fn retain(&mut self, keep: impl Fn(UeId) -> bool) {
        self.averages.retain(|&ue, _| keep(ue));
    }

    /// Distribute `prbs` among `channels` by iterated PF and update the
    /// averages with smoothing factor `alpha` (e.g. 0.1).
    ///
    /// Deterministic: metric ties break toward the lower UE id. PRBs are
    /// granted in blocks of one; UEs in outage receive nothing and their
    /// average decays.
    pub fn schedule(
        &mut self,
        prbs: Prbs,
        channels: &[UeChannel],
        alpha: f64,
    ) -> Vec<UeShare> {
        let mut granted: BTreeMap<UeId, u32> = BTreeMap::new();
        let schedulable: Vec<&UeChannel> = channels
            .iter()
            .filter(|c| c.cqi.is_some() && !c.prb_rate.is_zero())
            .collect();

        if !schedulable.is_empty() {
            // Track the rate each UE would accumulate this epoch; PF metric
            // uses the long-term average plus a small epsilon.
            for _ in 0..prbs.value() {
                let best = schedulable
                    .iter()
                    .max_by(|a, b| {
                        let metric = |c: &UeChannel| {
                            c.prb_rate.value() / (self.average(c.ue) + 1e-6)
                        };
                        metric(a)
                            .partial_cmp(&metric(b))
                            .expect("rates are finite")
                            // Ties: prefer the lower UE id.
                            .then_with(|| b.ue.cmp(&a.ue))
                    })
                    .expect("schedulable is non-empty");
                *granted.entry(best.ue).or_insert(0) += 1;
                // Granting PRBs raises the *tentative* average so the next
                // PRB can go elsewhere — the standard per-TTI PF loop.
                let add = best.prb_rate.value();
                *self.averages.entry(best.ue).or_insert(0.0) += add * alpha;
            }
        }

        // Final smoothing update: decay everyone toward their epoch rate.
        let mut shares = Vec::with_capacity(channels.len());
        for c in channels {
            let prbs_granted = granted.get(&c.ue).copied().unwrap_or(0);
            let rate = RateMbps::new(prbs_granted as f64 * c.prb_rate.value());
            let avg = self.averages.entry(c.ue).or_insert(0.0);
            *avg = (1.0 - alpha) * *avg + alpha * rate.value();
            shares.push(UeShare {
                ue: c.ue,
                prbs: Prbs::new(prbs_granted),
                rate,
            });
        }
        shares
    }
}

/// Jain's fairness index of a set of rates: 1 = perfectly fair, 1/n =
/// maximally unfair.
pub fn jain_index(rates: &[f64]) -> f64 {
    if rates.is_empty() {
        return 1.0;
    }
    let sum: f64 = rates.iter().sum();
    let sq_sum: f64 = rates.iter().map(|r| r * r).sum();
    if sq_sum == 0.0 {
        return 1.0;
    }
    sum * sum / (rates.len() as f64 * sq_sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cqi::prb_rate_mbps;

    fn ch(ue: u64, cqi: u8) -> UeChannel {
        let c = Cqi::new(cqi);
        UeChannel {
            ue: UeId::new(ue),
            cqi: c,
            prb_rate: RateMbps::new(c.map_or(0.0, prb_rate_mbps)),
        }
    }

    fn outage(ue: u64) -> UeChannel {
        UeChannel {
            ue: UeId::new(ue),
            cqi: None,
            prb_rate: RateMbps::ZERO,
        }
    }

    #[test]
    fn all_prbs_are_granted() {
        let mut pf = PfState::new();
        let channels = [ch(1, 10), ch(2, 10), ch(3, 10)];
        let shares = pf.schedule(Prbs::new(30), &channels, 0.1);
        let total: u32 = shares.iter().map(|s| s.prbs.value()).sum();
        assert_eq!(total, 30);
    }

    #[test]
    fn equal_channels_split_equally() {
        let mut pf = PfState::new();
        let channels = [ch(1, 9), ch(2, 9), ch(3, 9)];
        for _ in 0..20 {
            pf.schedule(Prbs::new(30), &channels, 0.1);
        }
        let shares = pf.schedule(Prbs::new(30), &channels, 0.1);
        for s in &shares {
            assert_eq!(s.prbs, Prbs::new(10), "{s:?}");
        }
    }

    #[test]
    fn outage_ue_gets_nothing_but_others_share() {
        let mut pf = PfState::new();
        let channels = [ch(1, 12), outage(2), ch(3, 12)];
        let shares = pf.schedule(Prbs::new(10), &channels, 0.1);
        assert_eq!(shares[1].prbs, Prbs::ZERO);
        assert_eq!(shares[1].rate, RateMbps::ZERO);
        let total: u32 = shares.iter().map(|s| s.prbs.value()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn all_outage_grants_nothing() {
        let mut pf = PfState::new();
        let shares = pf.schedule(Prbs::new(10), &[outage(1), outage(2)], 0.1);
        assert!(shares.iter().all(|s| s.prbs.is_zero()));
    }

    #[test]
    fn pf_is_fairer_than_max_rate_under_asymmetry() {
        // One near UE (CQI 14) and one edge UE (CQI 3). Max-rate would give
        // everything to CQI 14 forever; PF must keep the edge UE alive.
        let channels = [ch(1, 14), ch(2, 3)];
        let mut pf = PfState::new();
        let mut rates = [0.0f64; 2];
        let epochs = 100;
        for _ in 0..epochs {
            let shares = pf.schedule(Prbs::new(20), &channels, 0.1);
            for (i, s) in shares.iter().enumerate() {
                rates[i] += s.rate.value();
            }
        }
        assert!(rates[1] > 0.0, "edge UE starved");
        // PF equalizes *time share*, not rate: with a ~13x channel gap the
        // rate-domain Jain settles near 0.57 — still strictly above the 0.5
        // a max-rate scheduler would produce (edge UE fully starved).
        let fairness = jain_index(&rates);
        assert!(fairness > 0.55, "Jain {fairness}");
        // And PF still favors the better channel in *rate* terms.
        assert!(rates[0] > rates[1]);
    }

    #[test]
    fn pf_time_share_tilts_toward_edge_ue() {
        // PF equalizes *relative* throughput, which means the edge UE gets
        // at least as many PRBs as the strong one.
        let channels = [ch(1, 14), ch(2, 3)];
        let mut pf = PfState::new();
        let mut prbs = [0u32; 2];
        for _ in 0..100 {
            let shares = pf.schedule(Prbs::new(20), &channels, 0.1);
            for (i, s) in shares.iter().enumerate() {
                prbs[i] += s.prbs.value();
            }
        }
        assert!(prbs[1] >= prbs[0], "edge {} vs near {}", prbs[1], prbs[0]);
    }

    #[test]
    fn retain_drops_departed_ues() {
        let mut pf = PfState::new();
        pf.schedule(Prbs::new(10), &[ch(1, 9), ch(2, 9)], 0.1);
        assert!(pf.average(UeId::new(2)) > 0.0);
        pf.retain(|ue| ue == UeId::new(1));
        assert_eq!(pf.average(UeId::new(2)), 0.0);
        assert!(pf.average(UeId::new(1)) > 0.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut pf = PfState::new();
            let channels = [ch(1, 11), ch(2, 7), ch(3, 4)];
            (0..50)
                .map(|_| pf.schedule(Prbs::new(17), &channels, 0.1))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn jain_index_properties() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert!((jain_index(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[1.0, 0.0]) - 0.5).abs() < 1e-12);
        let skewed = jain_index(&[10.0, 1.0, 1.0]);
        assert!(skewed > 1.0 / 3.0 && skewed < 1.0);
    }
}
