//! Intra-slice scheduling: dividing a slice's allocated PRBs among its UEs.
//!
//! [`schedule_epoch`](crate::scheduler::schedule_epoch) decides how many
//! PRBs each *slice* gets; this module decides how each slice spends them
//! on its *UEs* with the classic proportional-fair (PF) rule: each PRB
//! round goes to the UE maximizing `instantaneous_rate / average_rate`, so
//! cell-edge UEs are not starved (as max-rate would) while good channels
//! are still favored (unlike round-robin).
//!
//! PF state (the throughput average) persists across epochs in
//! [`PfState`]; the demo's per-slice QoS is the aggregate, but per-UE
//! fairness determines whether *every* device in a vertical's fleet works.
//!
//! ## Scale
//!
//! State lives in a dense struct-of-arrays slab (`ids`/`avg`, sorted by UE
//! id) instead of a `BTreeMap<UeId, f64>`, and the grant loop is a max-heap
//! keyed by the PF metric — O(PRBs·log UEs) instead of the per-PRB linear
//! argmax's O(PRBs·UEs). The per-PRB reference survives as
//! [`PfState::schedule_reference`], and the heap path is bit-identical to
//! it by construction: the heap's comparator is the argmax's comparator
//! (metric, ties to the lower UE id), only the granted UE's metric ever
//! changes between grants, and that entry is re-keyed in place before the
//! next pop — so both loops pick the same unique maximum every round.
//!
//! With a caller-held [`PfScratch`] and output buffer
//! ([`PfState::schedule_into`]), a steady-state epoch allocates nothing:
//! the slab, heap and grant counters are all reused.
//!
//! UEs that leave the slice are evicted automatically: `channels` is the
//! slice's *full* current roster (UEs in outage included, with `cqi:
//! None`), so state for any UE absent from it is dropped — the map no
//! longer grows monotonically as devices churn through a fleet.

use crate::cqi::Cqi;
use ovnes_model::{Prbs, RateMbps, UeId};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One UE's channel state this epoch, as input to PF.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UeChannel {
    /// The UE.
    pub ue: UeId,
    /// Its achievable CQI this epoch (`None` = outage: unschedulable).
    pub cqi: Option<Cqi>,
    /// Rate one PRB carries at that CQI (cell profile applied).
    pub prb_rate: RateMbps,
}

/// One UE's share of the slice's PRBs this epoch.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct UeShare {
    /// The UE.
    pub ue: UeId,
    /// PRBs granted.
    pub prbs: Prbs,
    /// Rate achieved with them.
    pub rate: RateMbps,
}

/// A heap entry of the PF grant loop: one schedulable UE, keyed by its
/// current PF metric. Ordering replicates the reference argmax comparator
/// exactly: higher metric wins, metric ties go to the lower UE id. UE ids
/// are unique within an epoch, so the maximum is always unique and the
/// heap pops the same UE the linear scan would have found.
#[derive(Debug)]
struct PfEntry {
    /// Current PF metric: `prb_rate / (average + ε)`. Finite by
    /// construction (rates are finite, the denominator is ≥ ε).
    metric: f64,
    ue: UeId,
    /// Position in this epoch's `channels` slice.
    ci: usize,
}

impl PartialEq for PfEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for PfEntry {}
impl PartialOrd for PfEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PfEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.metric
            .partial_cmp(&other.metric)
            .expect("PF metrics are finite")
            // Ties: prefer the lower UE id.
            .then_with(|| other.ue.cmp(&self.ue))
    }
}

/// Reusable working memory for [`PfState::schedule_into`] and
/// [`PfState::schedule_reference_into`]. A caller threads one scratch
/// through every epoch so the PF hot path allocates nothing in steady
/// state; buffers grow lazily to the roster size on first use.
#[derive(Debug, Default)]
pub struct PfScratch {
    /// Dense slab slot of each channel this epoch (parallel to `channels`).
    slot: Vec<usize>,
    /// PRBs granted per channel this epoch (parallel to `channels`).
    granted: Vec<u32>,
    /// Eviction marks, parallel to the slab (used only on roster shrink).
    touched: Vec<bool>,
    /// The grant loop's heap buffer, recycled across epochs.
    entries: Vec<PfEntry>,
}

impl PfScratch {
    /// Empty scratch; buffers grow lazily on first use.
    pub fn new() -> PfScratch {
        Self::default()
    }
}

/// Persistent proportional-fair state: exponentially averaged per-UE
/// throughput, stored as a dense slab (`ids` ascending, `avg` parallel).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PfState {
    /// Tracked UEs, ascending.
    ids: Vec<UeId>,
    /// Averaged throughput per UE (Mbps), parallel to `ids`.
    avg: Vec<f64>,
}

impl PfState {
    /// Fresh state (all averages start at zero → first epoch is rate-blind
    /// and therefore fair by construction).
    pub fn new() -> PfState {
        Self::default()
    }

    /// The current throughput average of `ue` (0 if never scheduled).
    pub fn average(&self, ue: UeId) -> f64 {
        match self.ids.binary_search(&ue) {
            Ok(i) => self.avg[i],
            Err(_) => 0.0,
        }
    }

    /// Number of UEs currently tracked.
    pub fn tracked(&self) -> usize {
        self.ids.len()
    }

    /// Drop state for UEs that left the slice.
    pub fn retain(&mut self, keep: impl Fn(UeId) -> bool) {
        let mut w = 0;
        for r in 0..self.ids.len() {
            if keep(self.ids[r]) {
                self.ids[w] = self.ids[r];
                self.avg[w] = self.avg[r];
                w += 1;
            }
        }
        self.ids.truncate(w);
        self.avg.truncate(w);
    }

    /// Evict one UE (detach). True if it was tracked.
    pub fn evict(&mut self, ue: UeId) -> bool {
        match self.ids.binary_search(&ue) {
            Ok(i) => {
                self.ids.remove(i);
                self.avg.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// Distribute `prbs` among `channels` by iterated PF and update the
    /// averages with smoothing factor `alpha` (e.g. 0.1).
    ///
    /// Deterministic: metric ties break toward the lower UE id. PRBs are
    /// granted in blocks of one; UEs in outage receive nothing and their
    /// average decays. `channels` must name each UE at most once and is
    /// taken as the slice's full roster: state for UEs not listed is
    /// evicted (they have departed — see the module docs).
    ///
    /// Convenience wrapper over [`schedule_into`](Self::schedule_into) with
    /// one-shot buffers; epoch hot paths should hold a [`PfScratch`] and
    /// call `schedule_into` instead.
    pub fn schedule(&mut self, prbs: Prbs, channels: &[UeChannel], alpha: f64) -> Vec<UeShare> {
        let mut out = Vec::new();
        self.schedule_into(prbs, channels, alpha, &mut PfScratch::new(), &mut out);
        out
    }

    /// [`schedule`](Self::schedule) into caller-owned buffers: `scratch`
    /// holds the grant loop's working memory and `out` receives the shares
    /// (cleared first). Steady-state epochs allocate nothing.
    pub fn schedule_into(
        &mut self,
        prbs: Prbs,
        channels: &[UeChannel],
        alpha: f64,
        scratch: &mut PfScratch,
        out: &mut Vec<UeShare>,
    ) {
        self.begin_epoch(channels, scratch);

        // Build the heap over schedulable UEs, keyed by the current PF
        // metric. Heapify over the recycled buffer is O(UEs).
        let mut entries = std::mem::take(&mut scratch.entries);
        entries.clear();
        for (ci, c) in channels.iter().enumerate() {
            if c.cqi.is_some() && !c.prb_rate.is_zero() {
                entries.push(PfEntry {
                    metric: c.prb_rate.value() / (self.avg[scratch.slot[ci]] + 1e-6),
                    ue: c.ue,
                    ci,
                });
            }
        }
        let mut heap = BinaryHeap::from(entries);

        if !heap.is_empty() {
            // Track the rate each UE would accumulate this epoch; PF metric
            // uses the long-term average plus a small epsilon. Granting
            // raises the *tentative* average so the next PRB can go
            // elsewhere — the standard per-TTI PF loop. Only the winner's
            // metric changes, so re-keying it in place (PeekMut sifts on
            // drop) keeps every other heap key current.
            for _ in 0..prbs.value() {
                let mut top = heap.peek_mut().expect("heap is non-empty");
                let ci = top.ci;
                let c = &channels[ci];
                scratch.granted[ci] += 1;
                let slot = scratch.slot[ci];
                self.avg[slot] += c.prb_rate.value() * alpha;
                top.metric = c.prb_rate.value() / (self.avg[slot] + 1e-6);
            }
        }

        scratch.entries = heap.into_vec();
        self.finish_epoch(channels, alpha, scratch, out);
    }

    /// The retained per-PRB reference implementation: a linear argmax over
    /// the schedulable UEs for every PRB — O(PRBs·UEs). Kept as the test
    /// and bench oracle; [`schedule_into`](Self::schedule_into) must match
    /// it bit for bit.
    pub fn schedule_reference(
        &mut self,
        prbs: Prbs,
        channels: &[UeChannel],
        alpha: f64,
    ) -> Vec<UeShare> {
        let mut out = Vec::new();
        self.schedule_reference_into(prbs, channels, alpha, &mut PfScratch::new(), &mut out);
        out
    }

    /// [`schedule_reference`](Self::schedule_reference) into caller-owned
    /// buffers (same contract as [`schedule_into`](Self::schedule_into)).
    pub fn schedule_reference_into(
        &mut self,
        prbs: Prbs,
        channels: &[UeChannel],
        alpha: f64,
        scratch: &mut PfScratch,
        out: &mut Vec<UeShare>,
    ) {
        self.begin_epoch(channels, scratch);

        let any_schedulable = channels
            .iter()
            .any(|c| c.cqi.is_some() && !c.prb_rate.is_zero());
        if any_schedulable {
            for _ in 0..prbs.value() {
                let mut best: Option<usize> = None;
                for (ci, c) in channels.iter().enumerate() {
                    if c.cqi.is_none() || c.prb_rate.is_zero() {
                        continue;
                    }
                    let metric = |ci: usize| {
                        channels[ci].prb_rate.value() / (self.avg[scratch.slot[ci]] + 1e-6)
                    };
                    let better = match best {
                        None => true,
                        Some(b) => metric(ci)
                            .partial_cmp(&metric(b))
                            .expect("rates are finite")
                            // Ties: prefer the lower UE id.
                            .then_with(|| channels[b].ue.cmp(&c.ue))
                            .is_gt(),
                    };
                    if better {
                        best = Some(ci);
                    }
                }
                let ci = best.expect("a schedulable UE exists");
                scratch.granted[ci] += 1;
                self.avg[scratch.slot[ci]] += channels[ci].prb_rate.value() * alpha;
            }
        }

        self.finish_epoch(channels, alpha, scratch, out);
    }

    /// Shared epoch prologue: register every channel's UE in the slab,
    /// evict UEs that departed the roster, and resolve each channel's slab
    /// slot into `scratch.slot`. In steady state (same roster as last
    /// epoch) this is 2·UEs binary searches and no allocation.
    fn begin_epoch(&mut self, channels: &[UeChannel], scratch: &mut PfScratch) {
        for c in channels {
            if let Err(pos) = self.ids.binary_search(&c.ue) {
                self.ids.insert(pos, c.ue);
                self.avg.insert(pos, 0.0);
            }
        }
        if self.ids.len() != channels.len() {
            // Roster shrank (or grew past UEs that left the same epoch):
            // drop state for everyone not in this epoch's channel list.
            scratch.touched.clear();
            scratch.touched.resize(self.ids.len(), false);
            for c in channels {
                if let Ok(i) = self.ids.binary_search(&c.ue) {
                    scratch.touched[i] = true;
                }
            }
            let mut w = 0;
            for r in 0..self.ids.len() {
                if scratch.touched[r] {
                    self.ids[w] = self.ids[r];
                    self.avg[w] = self.avg[r];
                    w += 1;
                }
            }
            self.ids.truncate(w);
            self.avg.truncate(w);
        }
        scratch.slot.clear();
        scratch.granted.clear();
        scratch.granted.resize(channels.len(), 0);
        for c in channels {
            let slot = self
                .ids
                .binary_search(&c.ue)
                .expect("registered just above");
            scratch.slot.push(slot);
        }
    }

    /// Shared epoch epilogue: final smoothing update (decay everyone toward
    /// their epoch rate) and share emission in channel order.
    fn finish_epoch(
        &mut self,
        channels: &[UeChannel],
        alpha: f64,
        scratch: &PfScratch,
        out: &mut Vec<UeShare>,
    ) {
        out.clear();
        out.reserve(channels.len());
        for (ci, c) in channels.iter().enumerate() {
            let prbs_granted = scratch.granted[ci];
            let rate = RateMbps::new(prbs_granted as f64 * c.prb_rate.value());
            let avg = &mut self.avg[scratch.slot[ci]];
            *avg = (1.0 - alpha) * *avg + alpha * rate.value();
            out.push(UeShare {
                ue: c.ue,
                prbs: Prbs::new(prbs_granted),
                rate,
            });
        }
    }
}

/// Jain's fairness index of a set of rates: 1 = perfectly fair, 1/n =
/// maximally unfair.
pub fn jain_index(rates: &[f64]) -> f64 {
    if rates.is_empty() {
        return 1.0;
    }
    let sum: f64 = rates.iter().sum();
    let sq_sum: f64 = rates.iter().map(|r| r * r).sum();
    if sq_sum == 0.0 {
        return 1.0;
    }
    sum * sum / (rates.len() as f64 * sq_sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cqi::prb_rate_mbps;

    fn ch(ue: u64, cqi: u8) -> UeChannel {
        let c = Cqi::new(cqi);
        UeChannel {
            ue: UeId::new(ue),
            cqi: c,
            prb_rate: RateMbps::new(c.map_or(0.0, prb_rate_mbps)),
        }
    }

    fn outage(ue: u64) -> UeChannel {
        UeChannel {
            ue: UeId::new(ue),
            cqi: None,
            prb_rate: RateMbps::ZERO,
        }
    }

    #[test]
    fn all_prbs_are_granted() {
        let mut pf = PfState::new();
        let channels = [ch(1, 10), ch(2, 10), ch(3, 10)];
        let shares = pf.schedule(Prbs::new(30), &channels, 0.1);
        let total: u32 = shares.iter().map(|s| s.prbs.value()).sum();
        assert_eq!(total, 30);
    }

    #[test]
    fn equal_channels_split_equally() {
        let mut pf = PfState::new();
        let channels = [ch(1, 9), ch(2, 9), ch(3, 9)];
        for _ in 0..20 {
            pf.schedule(Prbs::new(30), &channels, 0.1);
        }
        let shares = pf.schedule(Prbs::new(30), &channels, 0.1);
        for s in &shares {
            assert_eq!(s.prbs, Prbs::new(10), "{s:?}");
        }
    }

    #[test]
    fn outage_ue_gets_nothing_but_others_share() {
        let mut pf = PfState::new();
        let channels = [ch(1, 12), outage(2), ch(3, 12)];
        let shares = pf.schedule(Prbs::new(10), &channels, 0.1);
        assert_eq!(shares[1].prbs, Prbs::ZERO);
        assert_eq!(shares[1].rate, RateMbps::ZERO);
        let total: u32 = shares.iter().map(|s| s.prbs.value()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn all_outage_grants_nothing() {
        let mut pf = PfState::new();
        let shares = pf.schedule(Prbs::new(10), &[outage(1), outage(2)], 0.1);
        assert!(shares.iter().all(|s| s.prbs.is_zero()));
    }

    #[test]
    fn pf_is_fairer_than_max_rate_under_asymmetry() {
        // One near UE (CQI 14) and one edge UE (CQI 3). Max-rate would give
        // everything to CQI 14 forever; PF must keep the edge UE alive.
        let channels = [ch(1, 14), ch(2, 3)];
        let mut pf = PfState::new();
        let mut rates = [0.0f64; 2];
        let epochs = 100;
        for _ in 0..epochs {
            let shares = pf.schedule(Prbs::new(20), &channels, 0.1);
            for (i, s) in shares.iter().enumerate() {
                rates[i] += s.rate.value();
            }
        }
        assert!(rates[1] > 0.0, "edge UE starved");
        // PF equalizes *time share*, not rate: with a ~13x channel gap the
        // rate-domain Jain settles near 0.57 — still strictly above the 0.5
        // a max-rate scheduler would produce (edge UE fully starved).
        let fairness = jain_index(&rates);
        assert!(fairness > 0.55, "Jain {fairness}");
        // And PF still favors the better channel in *rate* terms.
        assert!(rates[0] > rates[1]);
    }

    #[test]
    fn pf_time_share_tilts_toward_edge_ue() {
        // PF equalizes *relative* throughput, which means the edge UE gets
        // at least as many PRBs as the strong one.
        let channels = [ch(1, 14), ch(2, 3)];
        let mut pf = PfState::new();
        let mut prbs = [0u32; 2];
        for _ in 0..100 {
            let shares = pf.schedule(Prbs::new(20), &channels, 0.1);
            for (i, s) in shares.iter().enumerate() {
                prbs[i] += s.prbs.value();
            }
        }
        assert!(prbs[1] >= prbs[0], "edge {} vs near {}", prbs[1], prbs[0]);
    }

    #[test]
    fn retain_drops_departed_ues() {
        let mut pf = PfState::new();
        pf.schedule(Prbs::new(10), &[ch(1, 9), ch(2, 9)], 0.1);
        assert!(pf.average(UeId::new(2)) > 0.0);
        pf.retain(|ue| ue == UeId::new(1));
        assert_eq!(pf.average(UeId::new(2)), 0.0);
        assert!(pf.average(UeId::new(1)) > 0.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut pf = PfState::new();
            let channels = [ch(1, 11), ch(2, 7), ch(3, 4)];
            (0..50)
                .map(|_| pf.schedule(Prbs::new(17), &channels, 0.1))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn jain_index_properties() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert!((jain_index(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[1.0, 0.0]) - 0.5).abs() < 1e-12);
        let skewed = jain_index(&[10.0, 1.0, 1.0]);
        assert!(skewed > 1.0 / 3.0 && skewed < 1.0);
    }

    // ---- heap vs. per-PRB reference -----------------------------------

    fn assert_bitwise_eq(a: &[UeShare], b: &[UeShare]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.ue, y.ue);
            assert_eq!(x.prbs, y.prbs);
            assert_eq!(
                x.rate.value().to_bits(),
                y.rate.value().to_bits(),
                "rates diverged for {}",
                x.ue
            );
        }
    }

    #[test]
    fn heap_matches_reference_bit_for_bit() {
        // Mixed channel qualities, outages, and a deliberate metric tie
        // (UEs 4 and 5 share a CQI): 60 epochs of both paths on twin
        // states must never diverge by a single bit.
        let channels = [ch(1, 14), ch(2, 7), outage(3), ch(4, 9), ch(5, 9), ch(6, 1)];
        let mut heap = PfState::new();
        let mut oracle = PfState::new();
        let mut scratch = PfScratch::new();
        let mut shares = Vec::new();
        for epoch in 0..60 {
            heap.schedule_into(Prbs::new(23), &channels, 0.1, &mut scratch, &mut shares);
            let expect = oracle.schedule_reference(Prbs::new(23), &channels, 0.1);
            assert_bitwise_eq(&shares, &expect);
            for &ch in &channels {
                assert_eq!(
                    heap.average(ch.ue).to_bits(),
                    oracle.average(ch.ue).to_bits(),
                    "averages diverged at epoch {epoch}"
                );
            }
        }
    }

    #[test]
    fn heap_matches_reference_under_ties_from_cold_state() {
        // All averages zero and all rates equal: every PRB is a pure
        // tie-break. Both paths must walk the ids in the same order.
        let channels: Vec<UeChannel> = (0..7).map(|u| ch(u, 9)).collect();
        let mut heap = PfState::new();
        let mut oracle = PfState::new();
        let a = heap.schedule(Prbs::new(10), &channels, 0.1);
        let b = oracle.schedule_reference(Prbs::new(10), &channels, 0.1);
        assert_bitwise_eq(&a, &b);
        // 10 PRBs over 7 equal UEs: the 3 leftovers land on the lowest ids.
        assert_eq!(a[0].prbs, Prbs::new(2));
        assert_eq!(a[6].prbs, Prbs::new(1));
    }

    #[test]
    fn departed_ues_are_evicted_from_the_slab() {
        // Regression for the PfState leak: the map used to grow
        // monotonically because departed UEs were never evicted.
        let mut pf = PfState::new();
        pf.schedule(Prbs::new(10), &[ch(1, 9), ch(2, 9), ch(3, 9)], 0.1);
        assert_eq!(pf.tracked(), 3);
        // UE 2 departs: the next epoch's roster no longer lists it.
        pf.schedule(Prbs::new(10), &[ch(1, 9), ch(3, 9)], 0.1);
        assert_eq!(pf.tracked(), 2);
        assert_eq!(pf.average(UeId::new(2)), 0.0, "state dropped");
        assert!(pf.average(UeId::new(1)) > 0.0);
        // Churn does not accumulate state: cycle fresh ids through.
        for round in 0..50u64 {
            let roster = [ch(100 + round, 9), ch(200 + round, 9)];
            pf.schedule(Prbs::new(10), &roster, 0.1);
            assert_eq!(pf.tracked(), 2, "round {round}");
        }
    }

    #[test]
    fn evict_and_tracked() {
        let mut pf = PfState::new();
        pf.schedule(Prbs::new(6), &[ch(1, 9), ch(2, 9)], 0.1);
        assert_eq!(pf.tracked(), 2);
        assert!(pf.evict(UeId::new(1)));
        assert!(!pf.evict(UeId::new(1)), "already gone");
        assert_eq!(pf.tracked(), 1);
        assert_eq!(pf.average(UeId::new(1)), 0.0);
    }

    #[test]
    fn outage_ue_average_still_decays() {
        // A UE in outage stays on the roster: its average decays toward
        // zero but its state is not evicted.
        let mut pf = PfState::new();
        pf.schedule(Prbs::new(10), &[ch(1, 9), ch(2, 9)], 0.1);
        let before = pf.average(UeId::new(2));
        assert!(before > 0.0);
        pf.schedule(Prbs::new(10), &[ch(1, 9), outage(2)], 0.1);
        let after = pf.average(UeId::new(2));
        assert!(after > 0.0 && after < before, "decayed, not evicted");
        assert_eq!(pf.tracked(), 2);
    }

    #[test]
    fn scratch_reuse_is_invisible() {
        // One scratch threaded through interleaved epochs of two slices
        // with different roster sizes must not change any outcome.
        let a_channels = [ch(1, 12), ch(2, 5)];
        let b_channels = [ch(10, 9), ch(11, 9), ch(12, 3), outage(13)];
        let mut shared_a = PfState::new();
        let mut shared_b = PfState::new();
        let mut scratch = PfScratch::new();
        let mut out = Vec::new();
        let mut fresh_a = PfState::new();
        let mut fresh_b = PfState::new();
        for _ in 0..20 {
            shared_a.schedule_into(Prbs::new(9), &a_channels, 0.1, &mut scratch, &mut out);
            let expect = fresh_a.schedule(Prbs::new(9), &a_channels, 0.1);
            assert_bitwise_eq(&out, &expect);
            shared_b.schedule_into(Prbs::new(31), &b_channels, 0.1, &mut scratch, &mut out);
            let expect = fresh_b.schedule(Prbs::new(31), &b_channels, 0.1);
            assert_bitwise_eq(&out, &expect);
        }
    }

    #[test]
    fn zero_prbs_still_updates_averages() {
        let mut pf = PfState::new();
        pf.schedule(Prbs::new(10), &[ch(1, 9)], 0.1);
        let before = pf.average(UeId::new(1));
        let shares = pf.schedule(Prbs::ZERO, &[ch(1, 9)], 0.1);
        assert_eq!(shares[0].prbs, Prbs::ZERO);
        assert!(pf.average(UeId::new(1)) < before, "decays with no grant");
    }

    #[test]
    fn empty_roster_clears_state() {
        let mut pf = PfState::new();
        pf.schedule(Prbs::new(10), &[ch(1, 9)], 0.1);
        assert_eq!(pf.tracked(), 1);
        let shares = pf.schedule(Prbs::new(10), &[], 0.1);
        assert!(shares.is_empty());
        assert_eq!(pf.tracked(), 0, "no UEs left, no state kept");
    }
}
