//! The RAN domain controller.
//!
//! One of the three hierarchical controllers of the demo (§2): it owns the
//! eNBs, executes the orchestrator's PLMN install/resize/release commands,
//! runs the per-epoch PRB scheduler, and publishes utilization telemetry
//! upstream through its [`MetricRegistry`].

use crate::cell::{Enb, PlmnReservation, RanError};
use crate::scheduler::{schedule_epoch_into, SliceLoad, SliceScheduleOutcome, SliceScratch};
use ovnes_model::{EnbId, PlmnId, Prbs, RateMbps, SliceId};
use ovnes_sim::{MetricRegistry, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Samples preallocated per utilization series so steady-state epochs
/// record telemetry without growing the buffer (≈ 11 hours of 1-minute
/// epochs; longer runs merely fall back to amortized growth).
const UTIL_SERIES_PREALLOC: usize = 4096;

/// Offered traffic of one slice this epoch, as the orchestrator reports it.
#[derive(Clone, Debug, PartialEq)]
pub struct OfferedLoad {
    /// The slice.
    pub slice: SliceId,
    /// Offered traffic.
    pub offered: RateMbps,
    /// Effective per-PRB rate for this slice's UEs this epoch.
    pub prb_rate: RateMbps,
}

/// Telemetry snapshot of the whole RAN domain.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RanSnapshot {
    /// Per-eNB rows.
    pub enbs: Vec<EnbRow>,
}

/// One eNB's row in a [`RanSnapshot`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnbRow {
    /// The eNB.
    pub enb: EnbId,
    /// Grid size.
    pub total: Prbs,
    /// PRBs reserved across installed PLMNs.
    pub reserved: Prbs,
    /// Sum of nominal (SLA-peak) PRB needs.
    pub nominal: Prbs,
    /// Installed PLMN count.
    pub plmns: usize,
    /// nominal / total — above 1.0 the cell is overbooked.
    pub overbooking_factor: f64,
    /// False while the cell is failed (substrate outage).
    pub up: bool,
}

/// Persistent per-cell working state of the epoch pipeline: the cell's
/// collected loads, its scheduling scratch, and its outcomes, reused every
/// epoch so the pipeline allocates nothing in steady state. One batch per
/// managed eNB, kept sorted by id (the collect phase binary-searches, the
/// apply phase iterates in ascending-id order).
struct CellBatch {
    enb: EnbId,
    /// The cell's grid size (immutable per eNB).
    total: Prbs,
    /// Cached telemetry key: `format!` per epoch is an allocation.
    metric_name: String,
    loads: Vec<SliceLoad>,
    outs: Vec<SliceScheduleOutcome>,
    sched: SliceScratch,
    util: f64,
}

/// The RAN domain controller. See module docs.
pub struct RanController {
    enbs: BTreeMap<EnbId, Enb>,
    /// Which eNB each slice is installed on.
    placements: BTreeMap<SliceId, EnbId>,
    /// Cells currently failed: they schedule nothing and accept no new
    /// PLMNs, but keep their reservations so recovery can re-attach or
    /// restore them.
    down_cells: BTreeSet<EnbId>,
    metrics: MetricRegistry,
    /// Epoch-pipeline scratch, one entry per eNB in ascending-id order.
    batches: Vec<CellBatch>,
}

impl RanController {
    /// A controller managing `enbs`.
    ///
    /// # Panics
    /// Panics if two eNBs share an id.
    pub fn new(enbs: Vec<Enb>) -> RanController {
        let mut map = BTreeMap::new();
        for enb in enbs {
            let prev = map.insert(enb.id(), enb);
            assert!(prev.is_none(), "duplicate eNB id");
        }
        let mut metrics = MetricRegistry::new();
        let batches = map
            .values()
            .map(|enb| {
                let metric_name = format!("ran.{}.prb_utilization", enb.id());
                // Pre-create the series (with room for a long run) so the
                // epoch's record path is a pure lookup.
                metrics.series(&metric_name).reserve(UTIL_SERIES_PREALLOC);
                CellBatch {
                    enb: enb.id(),
                    total: enb.total_prbs(),
                    metric_name,
                    loads: Vec::new(),
                    outs: Vec::new(),
                    sched: SliceScratch::new(),
                    util: 0.0,
                }
            })
            .collect();
        RanController {
            enbs: map,
            placements: BTreeMap::new(),
            down_cells: BTreeSet::new(),
            metrics,
            batches,
        }
    }

    /// Ids of all managed eNBs.
    pub fn enb_ids(&self) -> Vec<EnbId> {
        self.enbs.keys().copied().collect()
    }

    /// The eNB serving `slice`, if installed.
    pub fn placement(&self, slice: SliceId) -> Option<EnbId> {
        self.placements.get(&slice).copied()
    }

    /// The reservation of `slice`, if installed.
    pub fn reservation(&self, slice: SliceId) -> Option<&PlmnReservation> {
        let enb = self.placements.get(&slice)?;
        self.enbs[enb].reservation(slice)
    }

    /// The eNB with the most available PRBs that can still broadcast another
    /// PLMN and fit `prbs`, or `None` if the RAN cannot host the slice.
    /// Failed cells are never candidates.
    pub fn best_fit(&self, prbs: Prbs) -> Option<EnbId> {
        self.enbs
            .values()
            .filter(|e| {
                !self.down_cells.contains(&e.id())
                    && e.available_prbs() >= prbs
                    && e.plmn_count() < e.config().max_plmns
            })
            .max_by_key(|e| (e.available_prbs(), std::cmp::Reverse(e.id())))
            .map(|e| e.id())
    }

    /// True unless `enb` is currently failed. Unknown cells are reported
    /// as down.
    pub fn cell_is_up(&self, enb: EnbId) -> bool {
        self.enbs.contains_key(&enb) && !self.down_cells.contains(&enb)
    }

    /// Currently failed cells, ascending.
    pub fn down_cells(&self) -> Vec<EnbId> {
        self.down_cells.iter().copied().collect()
    }

    /// Slices installed on `enb`, ascending.
    pub fn slices_on_cell(&self, enb: EnbId) -> Vec<SliceId> {
        self.placements
            .iter()
            .filter(|(_, &e)| e == enb)
            .map(|(&s, _)| s)
            .collect()
    }

    /// Take `enb` out of service and return the slices attached to it,
    /// ascending. Reservations stay installed (the grid state survives the
    /// outage); the scheduler simply stops serving the cell. Failing an
    /// already-down or unknown cell is a no-op returning no slices.
    pub fn fail_cell(&mut self, enb: EnbId) -> Vec<SliceId> {
        if !self.enbs.contains_key(&enb) || !self.down_cells.insert(enb) {
            return Vec::new();
        }
        self.metrics.counter("ran.cell_failures").inc();
        self.slices_on_cell(enb)
    }

    /// Return `enb` to service. True if it was down.
    pub fn revive_cell(&mut self, enb: EnbId) -> bool {
        if !self.down_cells.remove(&enb) {
            return false;
        }
        self.metrics.counter("ran.cell_recoveries").inc();
        true
    }

    /// Move `slice` to the best-fitting live cell, releasing its current
    /// PLMN first (the recovery pipeline's cell re-attach step). If no live
    /// cell fits, the original installation is restored untouched and an
    /// error is returned.
    pub fn reattach(&mut self, slice: SliceId) -> Result<EnbId, RanError> {
        let old = *self
            .placements
            .get(&slice)
            .ok_or(RanError::NotInstalled(slice))?;
        let res = self
            .enbs
            .get_mut(&old)
            .expect("placement points at a managed eNB")
            .release_plmn(slice)?;
        self.placements.remove(&slice);
        match self.best_fit(res.reserved) {
            Some(target) => {
                self.enbs
                    .get_mut(&target)
                    .expect("best_fit returns a managed eNB")
                    .install_plmn(slice, res.plmn, res.reserved, res.nominal)
                    .expect("best_fit guarantees the slot");
                self.placements.insert(slice, target);
                self.metrics.counter("ran.reattaches").inc();
                Ok(target)
            }
            None => {
                self.enbs
                    .get_mut(&old)
                    .expect("placement pointed at a managed eNB")
                    .install_plmn(slice, res.plmn, res.reserved, res.nominal)
                    .expect("the slot was just freed");
                self.placements.insert(slice, old);
                Err(RanError::InsufficientPrbs {
                    requested: res.reserved,
                    available: Prbs::ZERO,
                })
            }
        }
    }

    /// Install `slice` as `plmn` on `enb` with the given reservation.
    pub fn install(
        &mut self,
        enb: EnbId,
        slice: SliceId,
        plmn: PlmnId,
        reserved: Prbs,
        nominal: Prbs,
    ) -> Result<(), RanError> {
        let cell = self
            .enbs
            .get_mut(&enb)
            .ok_or(RanError::NotInstalled(slice))?;
        cell.install_plmn(slice, plmn, reserved, nominal)?;
        self.placements.insert(slice, enb);
        self.metrics.counter("ran.installs").inc();
        Ok(())
    }

    /// Resize `slice`'s reservation (overbooking reconfiguration).
    pub fn resize(&mut self, slice: SliceId, reserved: Prbs) -> Result<(), RanError> {
        let enb = *self
            .placements
            .get(&slice)
            .ok_or(RanError::NotInstalled(slice))?;
        self.enbs
            .get_mut(&enb)
            .expect("placement points at a managed eNB")
            .resize_reservation(slice, reserved)?;
        self.metrics.counter("ran.resizes").inc();
        Ok(())
    }

    /// Release `slice`'s PLMN and reservation.
    pub fn release(&mut self, slice: SliceId) -> Result<PlmnReservation, RanError> {
        let enb = self
            .placements
            .remove(&slice)
            .ok_or(RanError::NotInstalled(slice))?;
        let res = self
            .enbs
            .get_mut(&enb)
            .expect("placement points at a managed eNB")
            .release_plmn(slice)?;
        self.metrics.counter("ran.releases").inc();
        Ok(res)
    }

    /// Run one scheduling epoch at `now`: split `offered` by serving eNB,
    /// schedule each cell, record telemetry, and return all outcomes.
    ///
    /// Cells are independent PRB grids, so they are scheduled in parallel
    /// (collect → par-compute → ordered-apply). `schedule_epoch` is a pure
    /// function of its cell's inputs, and both the per-cell batches and the
    /// result apply follow ascending eNB id, so outcome order and telemetry
    /// are identical at any thread count.
    ///
    /// Loads for slices not installed anywhere are ignored (the slice is
    /// mid-teardown); callers detect this by the missing outcome. Failed
    /// cells schedule nothing: their loads are dropped the same way and the
    /// cell reports zero utilization until revived.
    pub fn run_epoch(&mut self, now: SimTime, offered: &[OfferedLoad]) -> Vec<SliceScheduleOutcome> {
        let mut out = Vec::new();
        self.run_epoch_into(now, offered, &mut out);
        out
    }

    /// [`run_epoch`](Self::run_epoch) into a caller-owned buffer (cleared
    /// first). With a reused buffer, a steady-state epoch allocates
    /// nothing: loads are collected into persistent per-cell batches,
    /// each cell schedules through its own retained scratch, and telemetry
    /// records into pre-created series under cached names.
    pub fn run_epoch_into(
        &mut self,
        now: SimTime,
        offered: &[OfferedLoad],
        out: &mut Vec<SliceScheduleOutcome>,
    ) {
        // Collect: group loads per eNB batch (sorted by id), preserving
        // input order within each cell.
        for b in &mut self.batches {
            b.loads.clear();
        }
        for load in offered {
            let Some(&enb) = self.placements.get(&load.slice) else {
                continue;
            };
            if self.down_cells.contains(&enb) {
                continue;
            }
            let reserved = self.enbs[&enb]
                .reservation(load.slice)
                .expect("placement implies reservation")
                .reserved;
            let bi = self
                .batches
                .binary_search_by_key(&enb, |b| b.enb)
                .expect("one batch per managed eNB");
            self.batches[bi].loads.push(SliceLoad {
                slice: load.slice,
                reserved,
                offered: load.offered,
                prb_rate: load.prb_rate,
            });
        }

        // Par-compute: one shard per cell. Idle (and down) cells have no
        // loads, schedule trivially, and report zero utilization.
        ovnes_sim::par::par_for_each_mut(&mut self.batches, |b| {
            schedule_epoch_into(b.total, &b.loads, &mut b.sched, &mut b.outs);
            let used: u32 = b.outs.iter().map(|o| o.allocated.value()).sum();
            b.util = used as f64 / b.total.value() as f64;
        });

        // Ordered apply: telemetry and outcome concatenation in ascending
        // cell-id order (same per-series values and same outcome order as
        // the busy-cells-then-idle-cells apply this replaced).
        out.clear();
        for b in &self.batches {
            match self.metrics.series_mut(&b.metric_name) {
                Some(series) => series.record(now, b.util),
                // Unreachable today (series are pre-created in `new`), but
                // degrade to the allocating path rather than panic.
                None => self.metrics.series(&b.metric_name).record(now, b.util),
            }
            out.extend_from_slice(&b.outs);
        }
    }

    /// Current domain snapshot for the orchestrator/dashboard.
    pub fn snapshot(&self) -> RanSnapshot {
        RanSnapshot {
            enbs: self
                .enbs
                .values()
                .map(|e| EnbRow {
                    enb: e.id(),
                    total: e.total_prbs(),
                    reserved: e.reserved_prbs(),
                    nominal: e.nominal_prbs(),
                    plmns: e.plmn_count(),
                    overbooking_factor: e.overbooking_factor(),
                    up: !self.down_cells.contains(&e.id()),
                })
                .collect(),
        }
    }

    /// Serializable copy of the domain's complete durable state, for
    /// checkpointing. Cell batches (the epoch pipeline's per-cell scratch)
    /// are deliberately absent: they carry no information between epochs
    /// and [`RanController::from_state`] rebuilds them from the eNB set.
    pub fn export_state(&self) -> RanControllerState {
        RanControllerState {
            enbs: self.enbs.values().cloned().collect(),
            placements: self.placements.clone(),
            down_cells: self.down_cells.clone(),
            metrics: self.metrics.clone(),
        }
    }

    /// Rebuild a controller from an exported state. The restored controller
    /// is observationally identical to the one exported: same reservations,
    /// same placements, same failed cells, same telemetry history.
    pub fn from_state(state: RanControllerState) -> RanController {
        let mut restored = RanController::new(state.enbs);
        restored.placements = state.placements;
        restored.down_cells = state.down_cells;
        // The restored registry already holds every utilization series;
        // overwriting the fresh one keeps history and series preallocation.
        restored.metrics = state.metrics;
        restored
    }

    /// Telemetry registry of the domain.
    pub fn metrics(&self) -> &MetricRegistry {
        &self.metrics
    }
}

/// Serializable checkpoint of a [`RanController`]
/// (see [`RanController::export_state`]).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RanControllerState {
    /// Every managed eNB with its reservations, ascending by id.
    pub enbs: Vec<Enb>,
    /// Which eNB each slice is installed on.
    pub placements: BTreeMap<SliceId, EnbId>,
    /// Cells currently failed.
    pub down_cells: BTreeSet<EnbId>,
    /// The domain's telemetry history.
    pub metrics: MetricRegistry,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellConfig;

    fn controller() -> RanController {
        RanController::new(vec![
            Enb::new(EnbId::new(0), CellConfig::default_20mhz()),
            Enb::new(EnbId::new(1), CellConfig::default_20mhz()),
        ])
    }

    fn plmn(n: u64) -> PlmnId {
        PlmnId::test_slice_plmn(n)
    }

    #[test]
    fn install_places_and_tracks() {
        let mut c = controller();
        c.install(EnbId::new(0), SliceId::new(1), plmn(0), Prbs::new(30), Prbs::new(30))
            .unwrap();
        assert_eq!(c.placement(SliceId::new(1)), Some(EnbId::new(0)));
        assert_eq!(c.reservation(SliceId::new(1)).unwrap().reserved, Prbs::new(30));
        assert_eq!(c.metrics().counter_value("ran.installs"), Some(1));
    }

    #[test]
    fn best_fit_prefers_emptier_cell() {
        let mut c = controller();
        c.install(EnbId::new(0), SliceId::new(1), plmn(0), Prbs::new(60), Prbs::new(60))
            .unwrap();
        assert_eq!(c.best_fit(Prbs::new(50)), Some(EnbId::new(1)));
        // Nothing fits 150 PRBs.
        assert_eq!(c.best_fit(Prbs::new(150)), None);
    }

    #[test]
    fn best_fit_respects_plmn_budget() {
        let mut c = RanController::new(vec![Enb::new(
            EnbId::new(0),
            CellConfig { max_plmns: 1, ..CellConfig::default_20mhz() },
        )]);
        c.install(EnbId::new(0), SliceId::new(1), plmn(0), Prbs::new(10), Prbs::new(10))
            .unwrap();
        assert_eq!(c.best_fit(Prbs::new(10)), None, "PLMN budget exhausted");
    }

    #[test]
    fn release_frees_resources() {
        let mut c = controller();
        c.install(EnbId::new(0), SliceId::new(1), plmn(0), Prbs::new(30), Prbs::new(30))
            .unwrap();
        c.release(SliceId::new(1)).unwrap();
        assert_eq!(c.placement(SliceId::new(1)), None);
        assert_eq!(c.best_fit(Prbs::new(100)), Some(EnbId::new(0)).or(Some(EnbId::new(1))));
        assert!(c.release(SliceId::new(1)).is_err(), "double release");
    }

    #[test]
    fn resize_changes_reservation() {
        let mut c = controller();
        c.install(EnbId::new(0), SliceId::new(1), plmn(0), Prbs::new(30), Prbs::new(50))
            .unwrap();
        c.resize(SliceId::new(1), Prbs::new(45)).unwrap();
        assert_eq!(c.reservation(SliceId::new(1)).unwrap().reserved, Prbs::new(45));
        assert!(c.resize(SliceId::new(9), Prbs::new(1)).is_err());
    }

    #[test]
    fn run_epoch_schedules_per_cell_and_records_utilization() {
        let mut c = controller();
        c.install(EnbId::new(0), SliceId::new(1), plmn(0), Prbs::new(50), Prbs::new(50))
            .unwrap();
        c.install(EnbId::new(1), SliceId::new(2), plmn(1), Prbs::new(50), Prbs::new(50))
            .unwrap();
        let outs = c.run_epoch(
            SimTime::from_secs(1),
            &[
                OfferedLoad { slice: SliceId::new(1), offered: RateMbps::new(10.0), prb_rate: RateMbps::new(0.5) },
                OfferedLoad { slice: SliceId::new(2), offered: RateMbps::new(20.0), prb_rate: RateMbps::new(0.5) },
            ],
        );
        assert_eq!(outs.len(), 2);
        let util0 = c
            .metrics()
            .series_ref("ran.enb-0.prb_utilization")
            .unwrap()
            .last()
            .unwrap()
            .1;
        assert!((util0 - 0.20).abs() < 1e-9, "20 of 100 PRBs, got {util0}");
    }

    #[test]
    fn run_epoch_ignores_uninstalled_slices() {
        let mut c = controller();
        let outs = c.run_epoch(
            SimTime::ZERO,
            &[OfferedLoad {
                slice: SliceId::new(9),
                offered: RateMbps::new(5.0),
                prb_rate: RateMbps::new(0.5),
            }],
        );
        assert!(outs.is_empty());
    }

    #[test]
    fn idle_cells_report_zero_utilization() {
        let mut c = controller();
        c.run_epoch(SimTime::ZERO, &[]);
        for enb in [0u64, 1] {
            let util = c
                .metrics()
                .series_ref(&format!("ran.enb-{enb}.prb_utilization"))
                .unwrap()
                .last()
                .unwrap()
                .1;
            assert_eq!(util, 0.0);
        }
    }

    #[test]
    fn snapshot_reflects_overbooking() {
        let mut c = controller();
        c.install(EnbId::new(0), SliceId::new(1), plmn(0), Prbs::new(40), Prbs::new(90))
            .unwrap();
        c.install(EnbId::new(0), SliceId::new(2), plmn(1), Prbs::new(40), Prbs::new(60))
            .unwrap();
        let snap = c.snapshot();
        let row0 = snap.enbs.iter().find(|r| r.enb == EnbId::new(0)).unwrap();
        assert_eq!(row0.reserved, Prbs::new(80));
        assert_eq!(row0.nominal, Prbs::new(150));
        assert!((row0.overbooking_factor - 1.5).abs() < 1e-12);
        assert_eq!(row0.plmns, 2);
        let row1 = snap.enbs.iter().find(|r| r.enb == EnbId::new(1)).unwrap();
        assert_eq!(row1.overbooking_factor, 0.0);
    }

    #[test]
    fn run_epoch_outcomes_independent_of_thread_count() {
        // Eight cells, three slices each; outcomes and telemetry must be
        // identical whether cells are scheduled serially or in parallel.
        let run = |threads: usize| {
            ovnes_sim::par::set_thread_override(Some(threads));
            let mut c = RanController::new(
                (0..8)
                    .map(|i| Enb::new(EnbId::new(i), CellConfig::default_20mhz()))
                    .collect(),
            );
            let mut loads = Vec::new();
            for s in 0..24u64 {
                c.install(
                    EnbId::new(s % 8),
                    SliceId::new(s),
                    plmn(s),
                    Prbs::new(20),
                    Prbs::new(30),
                )
                .unwrap();
                loads.push(OfferedLoad {
                    slice: SliceId::new(s),
                    offered: RateMbps::new(5.0 + s as f64),
                    prb_rate: RateMbps::new(0.4),
                });
            }
            let outs = c.run_epoch(SimTime::from_secs(60), &loads);
            let utils: Vec<f64> = (0..8)
                .map(|i| {
                    c.metrics()
                        .series_ref(&format!("ran.enb-{i}.prb_utilization"))
                        .unwrap()
                        .last()
                        .unwrap()
                        .1
                })
                .collect();
            ovnes_sim::par::set_thread_override(None);
            (outs, utils)
        };
        let serial = run(1);
        assert_eq!(serial, run(2));
        assert_eq!(serial, run(8));
    }

    #[test]
    fn run_epoch_into_reuses_buffers_without_changing_outcomes() {
        // The same controller state stepped with a reused outcome buffer
        // must match a twin stepped through the allocating wrapper, epoch
        // by epoch, including under load churn and a mid-run cell failure.
        let build = || {
            let mut c = controller();
            c.install(EnbId::new(0), SliceId::new(1), plmn(0), Prbs::new(50), Prbs::new(50))
                .unwrap();
            c.install(EnbId::new(1), SliceId::new(2), plmn(1), Prbs::new(40), Prbs::new(60))
                .unwrap();
            c
        };
        let mut reused = build();
        let mut fresh = build();
        let mut out = Vec::new();
        for epoch in 0..6u64 {
            if epoch == 3 {
                reused.fail_cell(EnbId::new(1));
                fresh.fail_cell(EnbId::new(1));
            }
            let loads = vec![
                OfferedLoad {
                    slice: SliceId::new(1),
                    offered: RateMbps::new(5.0 + epoch as f64 * 7.0),
                    prb_rate: RateMbps::new(0.5),
                },
                OfferedLoad {
                    slice: SliceId::new(2),
                    offered: RateMbps::new(30.0),
                    prb_rate: RateMbps::new(0.4),
                },
            ];
            let now = SimTime::from_secs(60 * (epoch + 1));
            reused.run_epoch_into(now, &loads, &mut out);
            assert_eq!(out, fresh.run_epoch(now, &loads), "epoch {epoch}");
        }
        for enb in [0u64, 1] {
            let name = format!("ran.enb-{enb}.prb_utilization");
            assert_eq!(
                reused.metrics().series_ref(&name),
                fresh.metrics().series_ref(&name),
                "telemetry diverged on {name}"
            );
        }
    }

    #[test]
    fn fail_cell_lists_occupants_and_blocks_best_fit() {
        let mut c = controller();
        c.install(EnbId::new(0), SliceId::new(3), plmn(0), Prbs::new(20), Prbs::new(20))
            .unwrap();
        c.install(EnbId::new(0), SliceId::new(1), plmn(1), Prbs::new(20), Prbs::new(20))
            .unwrap();
        let affected = c.fail_cell(EnbId::new(0));
        assert_eq!(affected, vec![SliceId::new(1), SliceId::new(3)], "ascending");
        assert!(!c.cell_is_up(EnbId::new(0)));
        assert_eq!(c.down_cells(), vec![EnbId::new(0)]);
        // Second failure of the same cell is a no-op.
        assert!(c.fail_cell(EnbId::new(0)).is_empty());
        assert_eq!(c.metrics().counter_value("ran.cell_failures"), Some(1));
        // Only the surviving cell is a placement candidate now.
        assert_eq!(c.best_fit(Prbs::new(10)), Some(EnbId::new(1)));
        assert!(c.revive_cell(EnbId::new(0)));
        assert!(!c.revive_cell(EnbId::new(0)), "already up");
        assert!(c.cell_is_up(EnbId::new(0)));
        // Reservations survived the outage untouched.
        assert_eq!(c.reservation(SliceId::new(1)).unwrap().reserved, Prbs::new(20));
    }

    #[test]
    fn unknown_cells_report_down_and_fail_quietly() {
        let mut c = controller();
        assert!(!c.cell_is_up(EnbId::new(9)));
        assert!(c.fail_cell(EnbId::new(9)).is_empty());
        assert!(!c.revive_cell(EnbId::new(9)));
    }

    #[test]
    fn reattach_moves_slice_off_a_dead_cell() {
        let mut c = controller();
        c.install(EnbId::new(0), SliceId::new(1), plmn(0), Prbs::new(30), Prbs::new(45))
            .unwrap();
        c.fail_cell(EnbId::new(0));
        let target = c.reattach(SliceId::new(1)).unwrap();
        assert_eq!(target, EnbId::new(1));
        assert_eq!(c.placement(SliceId::new(1)), Some(EnbId::new(1)));
        let res = c.reservation(SliceId::new(1)).unwrap();
        assert_eq!(res.reserved, Prbs::new(30), "reservation carried over");
        assert_eq!(res.nominal, Prbs::new(45), "nominal carried over");
        assert_eq!(c.metrics().counter_value("ran.reattaches"), Some(1));
        // The dead cell no longer holds the PLMN.
        let snap = c.snapshot();
        let row0 = snap.enbs.iter().find(|r| r.enb == EnbId::new(0)).unwrap();
        assert_eq!(row0.plmns, 0);
        assert!(!row0.up);
    }

    #[test]
    fn reattach_restores_original_when_nothing_fits() {
        let mut c = controller();
        c.install(EnbId::new(0), SliceId::new(1), plmn(0), Prbs::new(60), Prbs::new(60))
            .unwrap();
        // The only other cell is too full to take 60 PRBs.
        c.install(EnbId::new(1), SliceId::new(2), plmn(1), Prbs::new(50), Prbs::new(50))
            .unwrap();
        c.fail_cell(EnbId::new(0));
        assert!(matches!(
            c.reattach(SliceId::new(1)),
            Err(RanError::InsufficientPrbs { .. })
        ));
        // State rolled back: still installed on the dead cell.
        assert_eq!(c.placement(SliceId::new(1)), Some(EnbId::new(0)));
        assert_eq!(c.reservation(SliceId::new(1)).unwrap().reserved, Prbs::new(60));
        assert!(c.reattach(SliceId::new(9)).is_err(), "unknown slice");
    }

    #[test]
    fn down_cells_schedule_nothing() {
        let mut c = controller();
        c.install(EnbId::new(0), SliceId::new(1), plmn(0), Prbs::new(50), Prbs::new(50))
            .unwrap();
        c.fail_cell(EnbId::new(0));
        let outs = c.run_epoch(
            SimTime::from_secs(60),
            &[OfferedLoad {
                slice: SliceId::new(1),
                offered: RateMbps::new(10.0),
                prb_rate: RateMbps::new(0.5),
            }],
        );
        assert!(outs.is_empty(), "dead cell serves no traffic");
        let util = c
            .metrics()
            .series_ref("ran.enb-0.prb_utilization")
            .unwrap()
            .last()
            .unwrap()
            .1;
        assert_eq!(util, 0.0, "dead cell reports zero utilization");
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_enb_ids_rejected() {
        RanController::new(vec![
            Enb::new(EnbId::new(0), CellConfig::default_20mhz()),
            Enb::new(EnbId::new(0), CellConfig::default_20mhz()),
        ]);
    }
}
