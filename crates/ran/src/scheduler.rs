//! Slice-aware PRB scheduling for one monitoring epoch.
//!
//! The MOCN contract: every PLMN's *reserved* PRBs are guaranteed, but PRBs
//! a slice does not use this epoch — plus any unreserved grid — are lent to
//! slices whose demand exceeds their reservation. This intra-cell
//! statistical multiplexing (ref \[1\] of the paper) is what makes radio
//! overbooking safe *on average*: the overbooking engine shrinks
//! reservations knowing the scheduler will cover forecast misses with
//! whatever is idle.

use ovnes_model::{Prbs, RateMbps, SliceId};
use serde::{Deserialize, Serialize};

/// Per-slice input to an epoch of scheduling.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SliceLoad {
    /// The slice.
    pub slice: SliceId,
    /// PRBs guaranteed to this slice.
    pub reserved: Prbs,
    /// Traffic the slice offers this epoch.
    pub offered: RateMbps,
    /// Rate one PRB carries for this slice's UE population this epoch
    /// (from its average CQI).
    pub prb_rate: RateMbps,
}

/// Per-slice outcome of an epoch of scheduling.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SliceScheduleOutcome {
    /// The slice.
    pub slice: SliceId,
    /// PRBs actually allocated this epoch.
    pub allocated: Prbs,
    /// Throughput actually delivered.
    pub delivered: RateMbps,
    /// Offered traffic that could not be served.
    pub unserved: RateMbps,
    /// PRBs of this slice's reservation that were lent out (it did not need
    /// them).
    pub lent: Prbs,
    /// PRBs this slice borrowed beyond its reservation.
    pub borrowed: Prbs,
}

/// Reusable working memory for [`schedule_epoch_into`]: the per-slice
/// `needed`/`allocated` columns and the lending loop's unmet list. Holding
/// one scratch per cell across epochs makes scheduling allocation-free in
/// steady state; buffers grow lazily to the cell's slice count.
#[derive(Debug, Default)]
pub struct SliceScratch {
    needed: Vec<Prbs>,
    allocated: Vec<Prbs>,
    unmet: Vec<(usize, u32)>,
}

impl SliceScratch {
    /// Empty scratch; buffers grow lazily on first use.
    pub fn new() -> SliceScratch {
        Self::default()
    }
}

/// Schedule one epoch: allocate `total_prbs` among `loads`.
///
/// Deterministic: iteration follows the order of `loads`; remainder PRBs go
/// to the earliest unsatisfied slices. Slices in radio outage
/// (`prb_rate == 0`) receive nothing and their whole offered load is
/// unserved.
///
/// Convenience wrapper over [`schedule_epoch_into`] with one-shot buffers;
/// epoch hot paths should hold a [`SliceScratch`] and call that instead.
pub fn schedule_epoch(total_prbs: Prbs, loads: &[SliceLoad]) -> Vec<SliceScheduleOutcome> {
    let mut out = Vec::new();
    schedule_epoch_into(total_prbs, loads, &mut SliceScratch::new(), &mut out);
    out
}

/// [`schedule_epoch`] into caller-owned buffers: `scratch` holds the
/// working columns and `out` receives the outcomes (cleared first).
pub fn schedule_epoch_into(
    total_prbs: Prbs,
    loads: &[SliceLoad],
    scratch: &mut SliceScratch,
    out: &mut Vec<SliceScheduleOutcome>,
) {
    // PRBs each slice needs to carry its offered load at its link quality
    // (epsilon-tolerant rounding; an outage slice needs nothing it can use,
    // so guard `prb_rate == 0` before `for_rate` would saturate).
    let needed = &mut scratch.needed;
    needed.clear();
    needed.extend(loads.iter().map(|l| {
        if l.prb_rate.is_zero() {
            Prbs::ZERO
        } else {
            Prbs::for_rate(l.offered, l.prb_rate)
        }
    }));

    // Phase 1: everyone gets min(needed, reserved) — the guarantee.
    let allocated = &mut scratch.allocated;
    allocated.clear();
    allocated.extend(
        loads
            .iter()
            .zip(needed.iter())
            .map(|(l, &n)| n.min(l.reserved)),
    );

    // Phase 2: lend the idle grid to unmet slices, proportionally to unmet
    // need, remainders in input order.
    let used: Prbs = allocated.iter().copied().sum();
    let mut leftover = total_prbs.saturating_sub(used).value();
    loop {
        let unmet = &mut scratch.unmet;
        unmet.clear();
        unmet.extend((0..loads.len()).filter_map(|i| {
            let gap = needed[i].saturating_sub(allocated[i]).value();
            (gap > 0).then_some((i, gap))
        }));
        if leftover == 0 || unmet.is_empty() {
            break;
        }
        let total_gap: u64 = unmet.iter().map(|&(_, g)| g as u64).sum();
        if total_gap <= leftover as u64 {
            // Everyone's gap fits: satisfy all.
            for &(i, gap) in unmet.iter() {
                allocated[i] += Prbs::new(gap);
            }
            break;
        }
        // Proportional floor share; guarantee progress via remainder pass.
        let mut granted_any = false;
        let mut remaining = leftover;
        for &(i, gap) in unmet.iter() {
            let share = ((leftover as u64 * gap as u64) / total_gap) as u32;
            let grant = share.min(gap).min(remaining);
            if grant > 0 {
                allocated[i] += Prbs::new(grant);
                remaining -= grant;
                granted_any = true;
            }
        }
        // Remainder: one PRB at a time in input order.
        if remaining > 0 {
            for &(i, _) in unmet.iter() {
                if remaining == 0 {
                    break;
                }
                if needed[i].saturating_sub(allocated[i]).value() > 0 {
                    allocated[i] += Prbs::new(1);
                    remaining -= 1;
                    granted_any = true;
                }
            }
        }
        leftover = remaining;
        if !granted_any {
            break;
        }
    }

    out.clear();
    out.reserve(loads.len());
    out.extend(loads.iter().zip(allocated.iter()).map(|(l, &alloc)| {
        let delivered =
            RateMbps::new((alloc.value() as f64 * l.prb_rate.value()).min(l.offered.value()));
        SliceScheduleOutcome {
            slice: l.slice,
            allocated: alloc,
            delivered,
            unserved: l.offered.saturating_sub(delivered),
            lent: l.reserved.saturating_sub(alloc),
            borrowed: alloc.saturating_sub(l.reserved),
        }
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(id: u64, reserved: u32, offered: f64, prb_rate: f64) -> SliceLoad {
        SliceLoad {
            slice: SliceId::new(id),
            reserved: Prbs::new(reserved),
            offered: RateMbps::new(offered),
            prb_rate: RateMbps::new(prb_rate),
        }
    }

    #[test]
    fn demand_within_reservation_is_fully_served() {
        let out = schedule_epoch(Prbs::new(100), &[load(1, 50, 10.0, 0.5)]);
        assert_eq!(out[0].allocated, Prbs::new(20));
        assert_eq!(out[0].delivered.value(), 10.0);
        assert_eq!(out[0].unserved, RateMbps::ZERO);
        assert_eq!(out[0].lent, Prbs::new(30));
        assert_eq!(out[0].borrowed, Prbs::ZERO);
    }

    #[test]
    fn idle_reservation_is_lent_to_saturated_slice() {
        // Slice 1 reserved 80 but idle; slice 2 reserved 20 but wants 50 PRBs.
        let out = schedule_epoch(
            Prbs::new(100),
            &[load(1, 80, 0.0, 0.5), load(2, 20, 25.0, 0.5)],
        );
        assert_eq!(out[0].allocated, Prbs::ZERO);
        assert_eq!(out[1].allocated, Prbs::new(50));
        assert_eq!(out[1].borrowed, Prbs::new(30));
        assert_eq!(out[1].delivered.value(), 25.0);
    }

    #[test]
    fn reservations_are_guaranteed_under_contention() {
        // Both want the whole cell; reservations split it 70/30.
        let out = schedule_epoch(
            Prbs::new(100),
            &[load(1, 70, 100.0, 0.5), load(2, 30, 100.0, 0.5)],
        );
        assert_eq!(out[0].allocated, Prbs::new(70));
        assert_eq!(out[1].allocated, Prbs::new(30));
        assert_eq!(out[0].delivered.value(), 35.0);
        assert_eq!(out[1].delivered.value(), 15.0);
        assert!(out[0].unserved.value() > 0.0 && out[1].unserved.value() > 0.0);
    }

    #[test]
    fn unreserved_grid_is_shared_proportionally() {
        // 100 PRBs, only 40 reserved. Slices need 60 and 30 beyond nothing:
        // slice 1: reserved 20, needs 80 (gap 60); slice 2: reserved 20,
        // needs 50 (gap 30). Leftover = 60, split 40/20 by proportion.
        let out = schedule_epoch(
            Prbs::new(100),
            &[load(1, 20, 40.0, 0.5), load(2, 20, 25.0, 0.5)],
        );
        assert_eq!(out[0].allocated, Prbs::new(60));
        assert_eq!(out[1].allocated, Prbs::new(40));
        let total: u32 = out.iter().map(|o| o.allocated.value()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn allocation_never_exceeds_grid() {
        let loads: Vec<SliceLoad> = (0..7)
            .map(|i| load(i, 10, (i as f64 + 1.0) * 13.0, 0.3 + 0.05 * i as f64))
            .collect();
        let out = schedule_epoch(Prbs::new(100), &loads);
        let total: u32 = out.iter().map(|o| o.allocated.value()).sum();
        assert!(total <= 100, "allocated {total}");
    }

    #[test]
    fn outage_slice_gets_nothing() {
        let out = schedule_epoch(
            Prbs::new(100),
            &[load(1, 50, 10.0, 0.0), load(2, 20, 30.0, 0.5)],
        );
        assert_eq!(out[0].allocated, Prbs::ZERO);
        assert_eq!(out[0].unserved.value(), 10.0);
        // Outage slice's reservation is lent out.
        assert_eq!(out[1].allocated, Prbs::new(60));
        assert_eq!(out[0].lent, Prbs::new(50));
    }

    #[test]
    fn zero_offered_load_allocates_nothing() {
        let out = schedule_epoch(Prbs::new(100), &[load(1, 50, 0.0, 0.5)]);
        assert_eq!(out[0].allocated, Prbs::ZERO);
        assert_eq!(out[0].delivered, RateMbps::ZERO);
        assert_eq!(out[0].lent, Prbs::new(50));
    }

    #[test]
    fn empty_cell_is_fine() {
        assert!(schedule_epoch(Prbs::new(100), &[]).is_empty());
    }

    #[test]
    fn delivered_never_exceeds_offered() {
        // Needed PRBs are ceiled, so allocation could carry slightly more
        // than offered; delivered must clip at offered.
        let out = schedule_epoch(Prbs::new(100), &[load(1, 50, 10.1, 0.5)]);
        assert_eq!(out[0].allocated, Prbs::new(21));
        assert_eq!(out[0].delivered.value(), 10.1);
    }

    #[test]
    fn exactly_divisible_demand_does_not_over_allocate() {
        // 1.2 Mbps at 0.4 Mbps/PRB needs exactly 3 PRBs; float noise in the
        // quotient used to make this 4, silently stealing a PRB of lending
        // headroom from the rest of the cell.
        let out = schedule_epoch(Prbs::new(100), &[load(1, 50, 1.2, 0.4)]);
        assert_eq!(out[0].allocated, Prbs::new(3));
        assert_eq!(out[0].delivered.value(), 1.2);
        assert_eq!(out[0].lent, Prbs::new(47));
    }

    #[test]
    fn overbooked_cell_degrades_gracefully() {
        // Three slices each "own" 50 nominal PRBs on a 100-PRB cell
        // (overbooked 1.5×) but reservations were shrunk to 33 each.
        // When all peak simultaneously, each gets its ~third of the cell.
        let loads: Vec<SliceLoad> =
            (1..=3).map(|i| load(i, 33, 25.0, 0.5)).collect();
        let out = schedule_epoch(Prbs::new(100), &loads);
        for o in &out {
            assert!(o.allocated >= Prbs::new(33), "{:?}", o);
            assert!(o.delivered.value() >= 16.5);
            assert!(o.unserved.value() > 0.0, "demand 25 > 100/3 PRBs × 0.5");
        }
        let total: u32 = out.iter().map(|o| o.allocated.value()).sum();
        assert_eq!(total, 100, "full grid in play under saturation");
    }

    #[test]
    fn deterministic_across_runs() {
        let loads: Vec<SliceLoad> = (0..5).map(|i| load(i, 15, 20.0, 0.4)).collect();
        let a = schedule_epoch(Prbs::new(100), &loads);
        let b = schedule_epoch(Prbs::new(100), &loads);
        assert_eq!(a, b);
    }

    #[test]
    fn scratch_reuse_is_invisible() {
        // One scratch threaded through cells of different sizes and
        // contention patterns must not change any outcome.
        let mut scratch = SliceScratch::new();
        let mut out = Vec::new();
        let cases: Vec<Vec<SliceLoad>> = vec![
            (0..7).map(|i| load(i, 10, 13.0 * (i as f64 + 1.0), 0.4)).collect(),
            vec![load(1, 80, 0.0, 0.5), load(2, 20, 25.0, 0.5)],
            vec![],
            vec![load(1, 50, 10.0, 0.0), load(2, 20, 30.0, 0.5)],
            (1..=3).map(|i| load(i, 33, 25.0, 0.5)).collect(),
        ];
        for loads in &cases {
            schedule_epoch_into(Prbs::new(100), loads, &mut scratch, &mut out);
            assert_eq!(out, schedule_epoch(Prbs::new(100), loads));
        }
    }
}
