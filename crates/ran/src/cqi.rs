//! Link adaptation: the 3GPP TS 36.213 CQI table and the SNR→CQI→rate chain.
//!
//! LTE UEs report a Channel Quality Indicator (1–15); the eNB picks the
//! modulation and code rate accordingly. The spectral efficiency column of
//! the 4-bit CQI table (TS 36.213 Table 7.2.3-1) times the resource-element
//! budget of a PRB gives the per-PRB data rate the scheduler works with.

use serde::{Deserialize, Serialize};

/// A CQI index, 1..=15 (0 means out-of-range / no transmission).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Cqi(u8);

/// One row of the CQI table.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CqiRow {
    /// CQI index.
    pub index: u8,
    /// Modulation name.
    pub modulation: &'static str,
    /// Bits per modulation symbol.
    pub bits_per_symbol: u8,
    /// Effective code rate × 1024 (as the spec tabulates it).
    pub code_rate_x1024: u16,
    /// Spectral efficiency in information bits per symbol.
    pub efficiency: f64,
}

/// 3GPP TS 36.213 Table 7.2.3-1 (4-bit CQI).
pub const CQI_TABLE: [CqiRow; 15] = [
    CqiRow { index: 1, modulation: "QPSK", bits_per_symbol: 2, code_rate_x1024: 78, efficiency: 0.1523 },
    CqiRow { index: 2, modulation: "QPSK", bits_per_symbol: 2, code_rate_x1024: 120, efficiency: 0.2344 },
    CqiRow { index: 3, modulation: "QPSK", bits_per_symbol: 2, code_rate_x1024: 193, efficiency: 0.3770 },
    CqiRow { index: 4, modulation: "QPSK", bits_per_symbol: 2, code_rate_x1024: 308, efficiency: 0.6016 },
    CqiRow { index: 5, modulation: "QPSK", bits_per_symbol: 2, code_rate_x1024: 449, efficiency: 0.8770 },
    CqiRow { index: 6, modulation: "QPSK", bits_per_symbol: 2, code_rate_x1024: 602, efficiency: 1.1758 },
    CqiRow { index: 7, modulation: "16QAM", bits_per_symbol: 4, code_rate_x1024: 378, efficiency: 1.4766 },
    CqiRow { index: 8, modulation: "16QAM", bits_per_symbol: 4, code_rate_x1024: 490, efficiency: 1.9141 },
    CqiRow { index: 9, modulation: "16QAM", bits_per_symbol: 4, code_rate_x1024: 616, efficiency: 2.4063 },
    CqiRow { index: 10, modulation: "64QAM", bits_per_symbol: 6, code_rate_x1024: 466, efficiency: 2.7305 },
    CqiRow { index: 11, modulation: "64QAM", bits_per_symbol: 6, code_rate_x1024: 567, efficiency: 3.3223 },
    CqiRow { index: 12, modulation: "64QAM", bits_per_symbol: 6, code_rate_x1024: 666, efficiency: 3.9023 },
    CqiRow { index: 13, modulation: "64QAM", bits_per_symbol: 6, code_rate_x1024: 772, efficiency: 4.5234 },
    CqiRow { index: 14, modulation: "64QAM", bits_per_symbol: 6, code_rate_x1024: 873, efficiency: 5.1152 },
    CqiRow { index: 15, modulation: "64QAM", bits_per_symbol: 6, code_rate_x1024: 948, efficiency: 5.5547 },
];

/// SNR (dB) threshold above which each CQI index becomes usable, following
/// the common ~1.9 dB/CQI linearized BLER-10% mapping.
const SNR_THRESHOLDS_DB: [f64; 15] = [
    -6.7, -4.7, -2.3, 0.2, 2.4, 4.3, 5.9, 8.1, 10.3, 11.7, 14.1, 16.3, 18.7, 21.0, 22.7,
];

impl Cqi {
    /// Lowest usable CQI.
    pub const MIN: Cqi = Cqi(1);
    /// Highest CQI.
    pub const MAX: Cqi = Cqi(15);

    /// Construct from an index, returning `None` outside 1..=15.
    pub fn new(index: u8) -> Option<Cqi> {
        (1..=15).contains(&index).then_some(Cqi(index))
    }

    /// The raw index.
    pub fn index(self) -> u8 {
        self.0
    }

    /// The table row for this CQI.
    pub fn row(self) -> &'static CqiRow {
        &CQI_TABLE[self.0 as usize - 1]
    }

    /// Spectral efficiency in information bits per symbol.
    pub fn efficiency(self) -> f64 {
        self.row().efficiency
    }
}

/// Map an SNR in dB to the best sustainable CQI, or `None` below the
/// CQI-1 threshold (outage).
pub fn snr_to_cqi(snr_db: f64) -> Option<Cqi> {
    let mut best = None;
    for (i, &thr) in SNR_THRESHOLDS_DB.iter().enumerate() {
        if snr_db >= thr {
            best = Some(Cqi(i as u8 + 1));
        } else {
            break;
        }
    }
    best
}

/// Per-PRB data rate in Mbps at a given CQI.
///
/// A PRB is 12 subcarriers × 14 OFDM symbols per 1 ms subframe; ~11 of the
/// 14 symbols carry user data after control/reference overhead (typical
/// effective figure used in LTE dimensioning).
pub fn prb_rate_mbps(cqi: Cqi) -> f64 {
    const SUBCARRIERS: f64 = 12.0;
    const DATA_SYMBOLS_PER_MS: f64 = 11.0;
    // bits per ms = efficiency × RE count; Mbps = kbit/ms ÷ 1000 × 1000 → same number.
    cqi.efficiency() * SUBCARRIERS * DATA_SYMBOLS_PER_MS / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_spec_endpoints() {
        assert_eq!(CQI_TABLE[0].efficiency, 0.1523);
        assert_eq!(CQI_TABLE[14].efficiency, 5.5547);
        assert_eq!(CQI_TABLE[6].modulation, "16QAM");
        assert_eq!(CQI_TABLE[9].modulation, "64QAM");
    }

    #[test]
    fn table_efficiency_is_monotone() {
        for w in CQI_TABLE.windows(2) {
            assert!(w[0].efficiency < w[1].efficiency);
        }
    }

    #[test]
    fn cqi_construction_bounds() {
        assert_eq!(Cqi::new(0), None);
        assert_eq!(Cqi::new(16), None);
        assert_eq!(Cqi::new(1), Some(Cqi::MIN));
        assert_eq!(Cqi::new(15), Some(Cqi::MAX));
        assert_eq!(Cqi::new(9).unwrap().index(), 9);
    }

    #[test]
    fn snr_mapping_is_monotone() {
        let mut last = 0u8;
        for snr10 in -100..300 {
            let snr = snr10 as f64 / 10.0;
            if let Some(c) = snr_to_cqi(snr) {
                assert!(c.index() >= last);
                last = c.index();
            } else {
                assert_eq!(last, 0, "outage only below the first threshold");
            }
        }
        assert_eq!(last, 15);
    }

    #[test]
    fn snr_mapping_key_points() {
        assert_eq!(snr_to_cqi(-10.0), None, "deep outage");
        assert_eq!(snr_to_cqi(-6.7).unwrap().index(), 1);
        assert_eq!(snr_to_cqi(0.0).unwrap().index(), 3);
        assert_eq!(snr_to_cqi(22.7).unwrap().index(), 15);
        assert_eq!(snr_to_cqi(40.0).unwrap().index(), 15);
    }

    #[test]
    fn prb_rate_spans_expected_range() {
        // CQI 15: 5.5547 × 132 RE/ms ≈ 0.733 Mbps per PRB → a 100-PRB cell
        // peaks around 73 Mbps per antenna layer, the familiar LTE figure.
        let top = prb_rate_mbps(Cqi::MAX);
        assert!((top - 0.7332).abs() < 0.001, "got {top}");
        let bottom = prb_rate_mbps(Cqi::MIN);
        assert!((bottom - 0.0201).abs() < 0.001, "got {bottom}");
    }

    #[test]
    fn prb_rate_monotone_in_cqi() {
        for i in 1..15u8 {
            assert!(prb_rate_mbps(Cqi::new(i).unwrap()) < prb_rate_mbps(Cqi::new(i + 1).unwrap()));
        }
    }
}
