//! User equipment and its radio channel.
//!
//! In the demo, commercial UEs associate with the PLMN-id of their slice and
//! connect "after few seconds". Here a [`Ue`] carries the same association
//! (IMSI → PLMN → slice) plus a [`ChannelModel`] — log-distance pathloss
//! with lognormal shadowing — that yields the time-varying SNR/CQI the PRB
//! scheduler converts into throughput.

use crate::cell::PrbRateTable;
use crate::cqi::{snr_to_cqi, Cqi};
use crate::ue_scheduler::UeChannel;
use ovnes_model::{PlmnId, RateMbps, UeId};
use ovnes_sim::SimRng;
use serde::{Deserialize, Serialize};

/// Log-distance pathloss channel with lognormal shadowing.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChannelModel {
    /// eNB transmit power + antenna gains minus noise floor, in dB: the SNR
    /// a UE would see at the reference distance with no pathloss beyond it.
    pub link_budget_db: f64,
    /// Pathloss at the reference distance (1 m), dB.
    pub pl0_db: f64,
    /// Pathloss exponent (2 = free space, 3–4 = urban).
    pub exponent: f64,
    /// Standard deviation of the lognormal shadowing term, dB.
    pub shadowing_std_db: f64,
}

impl ChannelModel {
    /// Typical urban small-cell parameters: a UE at 50 m sees ~22 dB SNR
    /// (CQI 14–15), at 200 m ~5 dB (CQI 6–7), cell edge near 400 m.
    pub fn urban_small_cell() -> ChannelModel {
        ChannelModel {
            link_budget_db: 105.0,
            pl0_db: 30.0,
            exponent: 3.1,
            shadowing_std_db: 4.0,
        }
    }

    /// Deterministic mean SNR (dB) at `distance_m` meters (no shadowing).
    pub fn mean_snr_db(&self, distance_m: f64) -> f64 {
        let d = distance_m.max(1.0);
        self.link_budget_db - self.pl0_db - 10.0 * self.exponent * d.log10()
    }

    /// Sample the instantaneous SNR at `distance_m`, with shadowing drawn
    /// from `rng`.
    pub fn sample_snr_db(&self, distance_m: f64, rng: &mut SimRng) -> f64 {
        self.mean_snr_db(distance_m) + rng.normal(0.0, self.shadowing_std_db)
    }

    /// Sample the CQI at `distance_m` (`None` = outage this epoch).
    pub fn sample_cqi(&self, distance_m: f64, rng: &mut SimRng) -> Option<Cqi> {
        snr_to_cqi(self.sample_snr_db(distance_m, rng))
    }
}

/// A user equipment associated with one slice's PLMN.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Ue {
    /// Identifier.
    pub id: UeId,
    /// The PLMN (and hence slice) this UE selects.
    pub plmn: PlmnId,
    /// Distance from its serving eNB, meters.
    pub distance_m: f64,
    /// Whether the UE has completed attach (EPC bearer established).
    pub attached: bool,
}

impl Ue {
    /// A detached UE at `distance_m` from its serving eNB.
    pub fn new(id: UeId, plmn: PlmnId, distance_m: f64) -> Ue {
        Ue {
            id,
            plmn,
            distance_m,
            attached: false,
        }
    }

    /// Mark attach complete (called when the slice's vEPC accepts the UE).
    pub fn attach(&mut self) {
        self.attached = true;
    }

    /// Detach (slice teardown or mobility out of coverage).
    pub fn detach(&mut self) {
        self.attached = false;
    }
}

/// Mobility model: per-epoch bounded random walk of the UE's distance from
/// its serving eNB. Crude but sufficient to exercise what mobility does to
/// the scheduler — link quality drifts over a slice's lifetime, so the
/// per-PRB rate the orchestrator observed at admission decays or improves.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MobilityModel {
    /// Standard deviation of the per-epoch distance step, meters.
    pub step_std_m: f64,
    /// Closest approach to the eNB.
    pub min_distance_m: f64,
    /// Cell-edge bound (UEs never leave the cell in this model; handover is
    /// out of the demo's scope — its two eNBs serve disjoint PLMN areas).
    pub max_distance_m: f64,
}

impl MobilityModel {
    /// Pedestrian-scale drift: ~8 m per minute-epoch.
    pub fn pedestrian() -> MobilityModel {
        MobilityModel {
            step_std_m: 8.0,
            min_distance_m: 10.0,
            max_distance_m: 350.0,
        }
    }

    /// Vehicular drift: ~60 m per minute-epoch.
    pub fn vehicular() -> MobilityModel {
        MobilityModel {
            step_std_m: 60.0,
            min_distance_m: 10.0,
            max_distance_m: 350.0,
        }
    }

    /// No movement.
    pub fn stationary() -> MobilityModel {
        MobilityModel {
            step_std_m: 0.0,
            min_distance_m: 10.0,
            max_distance_m: 350.0,
        }
    }

    /// Advance `ue` by one epoch.
    pub fn step(&self, ue: &mut Ue, rng: &mut SimRng) {
        if self.step_std_m == 0.0 {
            return;
        }
        let delta = rng.normal(0.0, self.step_std_m);
        ue.distance_m = (ue.distance_m + delta).clamp(self.min_distance_m, self.max_distance_m);
    }
}

/// A slice's UE fleet in struct-of-arrays layout: parallel arrays of id,
/// distance and attach flag instead of a `Vec<Ue>` of structs.
///
/// The epoch hot path walks every UE three times (mobility step, average
/// CQI, fairness channel sample) and touches only the distance column —
/// dense `f64` arrays keep those sweeps sequential in memory at 100k UEs
/// where an array-of-structs walk would drag ids and flags through cache
/// for nothing. Draw order is the invariant: every method consumes the
/// slice's RNG stream exactly as the per-[`Ue`] loops it replaced did
/// (mobility draws per UE — none when the model is stationary — then one
/// CQI sample per UE per sweep), so populations are bit-compatible with
/// the old representation under one seed.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct UePopulation {
    plmn: PlmnId,
    ids: Vec<UeId>,
    distance_m: Vec<f64>,
    attached: Vec<bool>,
}

impl UePopulation {
    /// An empty fleet associated with `plmn`.
    pub fn new(plmn: PlmnId) -> UePopulation {
        UePopulation {
            plmn,
            ids: Vec::new(),
            distance_m: Vec::new(),
            attached: Vec::new(),
        }
    }

    /// Add a UE (columns stay parallel; ids arrive in mint order, so the
    /// id column is ascending).
    pub fn push(&mut self, ue: Ue) {
        debug_assert_eq!(ue.plmn, self.plmn, "UE belongs to another slice");
        self.ids.push(ue.id);
        self.distance_m.push(ue.distance_m);
        self.attached.push(ue.attached);
    }

    /// Number of UEs in the fleet.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The slice's PLMN.
    pub fn plmn(&self) -> PlmnId {
        self.plmn
    }

    /// UE ids, in insertion (= mint) order.
    pub fn ids(&self) -> &[UeId] {
        &self.ids
    }

    /// Reassemble the `i`-th UE as a struct (tests, monitoring).
    pub fn get(&self, i: usize) -> Ue {
        Ue {
            id: self.ids[i],
            plmn: self.plmn,
            distance_m: self.distance_m[i],
            attached: self.attached[i],
        }
    }

    /// Mark every UE attached (the slice's vEPC accepted the fleet).
    pub fn attach_all(&mut self) {
        self.attached.fill(true);
    }

    /// Remove `ue` from the fleet (detach / departure). Returns the removed
    /// UE, or `None` if it was not a member. Column order is preserved, so
    /// the survivors' draw order next epoch is unchanged.
    pub fn remove(&mut self, ue: UeId) -> Option<Ue> {
        let i = self.ids.iter().position(|&id| id == ue)?;
        Some(Ue {
            id: self.ids.remove(i),
            plmn: self.plmn,
            distance_m: self.distance_m.remove(i),
            attached: self.attached.remove(i),
        })
    }

    /// Advance every UE by one mobility epoch. Stationary models draw
    /// nothing, exactly like [`MobilityModel::step`] per UE.
    pub fn step_all(&mut self, model: &MobilityModel, rng: &mut SimRng) {
        if model.step_std_m == 0.0 {
            return;
        }
        for d in &mut self.distance_m {
            let delta = rng.normal(0.0, model.step_std_m);
            *d = (*d + delta).clamp(model.min_distance_m, model.max_distance_m);
        }
    }

    /// Average CQI over the fleet this epoch (see [`slice_average_cqi`]:
    /// same draws, same rounding).
    pub fn average_cqi(&self, channel: &ChannelModel, rng: &mut SimRng) -> Option<Cqi> {
        if self.is_empty() {
            return None;
        }
        let mut sum = 0u32;
        let mut n = 0u32;
        for &d in &self.distance_m {
            if let Some(cqi) = channel.sample_cqi(d, rng) {
                sum += cqi.index() as u32;
                n += 1;
            }
        }
        if n == 0 {
            return None;
        }
        Cqi::new((sum as f64 / n as f64).round() as u8)
    }

    /// Sample one [`UeChannel`] per UE into `out` (cleared first): one CQI
    /// draw per UE in fleet order, per-PRB rates looked up in the cell's
    /// precomputed `rates` table. Allocation-free once `out` has grown to
    /// the fleet size.
    ///
    /// The sweep is batched over fixed-size slabs: the caller fetched the
    /// cell's RNG stream once, and per slab the shadowing draws run as one
    /// dense pass over a stack buffer before a second dense pass does the
    /// pathloss/CQI/rate arithmetic over the distance column. Each UE still
    /// draws exactly one `normal` in fleet order — the very call sequence of
    /// the per-UE loop — so the output is bitwise identical to the unbatched
    /// form; only the memory access pattern changes.
    pub fn sample_channels_into(
        &self,
        channel: &ChannelModel,
        rates: &PrbRateTable,
        rng: &mut SimRng,
        out: &mut Vec<UeChannel>,
    ) {
        const BATCH: usize = 128;
        out.clear();
        out.reserve(self.len());
        let mut shadow = [0.0f64; BATCH];
        let mut start = 0;
        while start < self.len() {
            let end = (start + BATCH).min(self.len());
            let n = end - start;
            // Pass 1: shadowing draws, one per UE, dense over the slab.
            for s in shadow.iter_mut().take(n) {
                *s = rng.normal(0.0, channel.shadowing_std_db);
            }
            // Pass 2: SNR → CQI → per-PRB rate, dense over the distance
            // column; no RNG access in this pass.
            for (j, &d) in self.distance_m[start..end].iter().enumerate() {
                let cqi = snr_to_cqi(channel.mean_snr_db(d) + shadow[j]);
                out.push(UeChannel {
                    ue: self.ids[start + j],
                    cqi,
                    prb_rate: cqi.map(|c| rates.rate(c)).unwrap_or(RateMbps::ZERO),
                });
            }
            start = end;
        }
    }
}

/// Average CQI over a set of UEs this epoch: the scheduler's effective
/// link quality for a slice. UEs in outage contribute CQI 0; returns `None`
/// if `ues` is empty or all are in outage.
pub fn slice_average_cqi(
    ues: &[Ue],
    channel: &ChannelModel,
    rng: &mut SimRng,
) -> Option<Cqi> {
    if ues.is_empty() {
        return None;
    }
    let mut sum = 0u32;
    let mut n = 0u32;
    for ue in ues {
        if let Some(cqi) = channel.sample_cqi(ue.distance_m, rng) {
            sum += cqi.index() as u32;
            n += 1;
        }
    }
    if n == 0 {
        return None;
    }
    Cqi::new((sum as f64 / n as f64).round() as u8)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ch() -> ChannelModel {
        ChannelModel::urban_small_cell()
    }

    #[test]
    fn snr_decreases_with_distance() {
        let c = ch();
        let near = c.mean_snr_db(10.0);
        let mid = c.mean_snr_db(100.0);
        let far = c.mean_snr_db(1000.0);
        assert!(near > mid && mid > far);
        // One decade of distance costs 10·n dB.
        assert!((near - mid - 31.0).abs() < 1e-9);
    }

    #[test]
    fn urban_profile_gives_sane_cqis() {
        let c = ch();
        assert!(snr_to_cqi(c.mean_snr_db(50.0)).unwrap().index() >= 13, "near UE is high CQI");
        let far = snr_to_cqi(c.mean_snr_db(200.0)).unwrap().index();
        assert!((5..=9).contains(&far), "mid-range UE got CQI {far}");
        assert!(snr_to_cqi(c.mean_snr_db(2000.0)).is_none(), "deep edge is outage");
    }

    #[test]
    fn distance_clamps_below_one_meter() {
        let c = ch();
        assert_eq!(c.mean_snr_db(0.0), c.mean_snr_db(1.0));
    }

    #[test]
    fn shadowing_has_configured_spread() {
        let c = ch();
        let mut rng = SimRng::seed_from(3);
        let n = 20_000;
        let mean_snr = c.mean_snr_db(100.0);
        let samples: Vec<f64> = (0..n).map(|_| c.sample_snr_db(100.0, &mut rng)).collect();
        let m = samples.iter().sum::<f64>() / n as f64;
        let sd = (samples.iter().map(|s| (s - m).powi(2)).sum::<f64>() / n as f64).sqrt();
        assert!((m - mean_snr).abs() < 0.1);
        assert!((sd - c.shadowing_std_db).abs() < 0.1);
    }

    #[test]
    fn ue_lifecycle() {
        let mut ue = Ue::new(UeId::new(1), PlmnId::test_slice_plmn(0), 80.0);
        assert!(!ue.attached);
        ue.attach();
        assert!(ue.attached);
        ue.detach();
        assert!(!ue.attached);
    }

    #[test]
    fn slice_average_cqi_empty_and_outage() {
        let c = ch();
        let mut rng = SimRng::seed_from(4);
        assert_eq!(slice_average_cqi(&[], &c, &mut rng), None);
        let far = vec![Ue::new(UeId::new(1), PlmnId::test_slice_plmn(0), 50_000.0)];
        assert_eq!(slice_average_cqi(&far, &c, &mut rng), None);
    }

    #[test]
    fn slice_average_cqi_blends_near_and_far() {
        let c = ch();
        let mut rng = SimRng::seed_from(5);
        let plmn = PlmnId::test_slice_plmn(0);
        let ues = vec![
            Ue::new(UeId::new(1), plmn, 30.0),
            Ue::new(UeId::new(2), plmn, 250.0),
        ];
        let mut sum = 0u32;
        let trials = 500;
        for _ in 0..trials {
            sum += slice_average_cqi(&ues, &c, &mut rng).unwrap().index() as u32;
        }
        let avg = sum as f64 / trials as f64;
        assert!((8.0..13.0).contains(&avg), "blended CQI ≈ 10±2, got {avg}");
    }

    #[test]
    fn stationary_model_never_moves() {
        let mut ue = Ue::new(UeId::new(1), PlmnId::test_slice_plmn(0), 100.0);
        let mut rng = SimRng::seed_from(1);
        let m = MobilityModel::stationary();
        for _ in 0..100 {
            m.step(&mut ue, &mut rng);
        }
        assert_eq!(ue.distance_m, 100.0);
    }

    #[test]
    fn mobility_respects_bounds() {
        let mut ue = Ue::new(UeId::new(1), PlmnId::test_slice_plmn(0), 100.0);
        let mut rng = SimRng::seed_from(2);
        let m = MobilityModel::vehicular();
        for _ in 0..10_000 {
            m.step(&mut ue, &mut rng);
            assert!(ue.distance_m >= m.min_distance_m && ue.distance_m <= m.max_distance_m);
        }
    }

    #[test]
    fn mobility_actually_moves_and_explores() {
        let mut ue = Ue::new(UeId::new(1), PlmnId::test_slice_plmn(0), 100.0);
        let mut rng = SimRng::seed_from(3);
        let m = MobilityModel::pedestrian();
        let mut min_seen = ue.distance_m;
        let mut max_seen = ue.distance_m;
        for _ in 0..2_000 {
            m.step(&mut ue, &mut rng);
            min_seen = min_seen.min(ue.distance_m);
            max_seen = max_seen.max(ue.distance_m);
        }
        assert!(max_seen - min_seen > 100.0, "range {}", max_seen - min_seen);
    }

    #[test]
    fn vehicular_drifts_faster_than_pedestrian() {
        let spread = |model: MobilityModel, seed: u64| {
            let mut ue = Ue::new(UeId::new(1), PlmnId::test_slice_plmn(0), 180.0);
            let mut rng = SimRng::seed_from(seed);
            let start = ue.distance_m;
            let mut total = 0.0;
            for _ in 0..50 {
                let before = ue.distance_m;
                model.step(&mut ue, &mut rng);
                total += (ue.distance_m - before).abs();
            }
            let _ = start;
            total
        };
        assert!(
            spread(MobilityModel::vehicular(), 7) > 3.0 * spread(MobilityModel::pedestrian(), 7)
        );
    }

    #[test]
    fn population_matches_per_ue_loops_bit_for_bit() {
        // The SoA fleet must consume the RNG stream exactly like the
        // per-Ue loops it replaced: identical distances, identical average
        // CQI, identical channel samples, under one seed.
        let c = ch();
        let plmn = PlmnId::test_slice_plmn(0);
        let m = MobilityModel::pedestrian();
        let rates = crate::cell::CellConfig::default_20mhz().rate_table();
        let mut ues: Vec<Ue> = (0..9)
            .map(|i| Ue::new(UeId::new(i), plmn, 30.0 + 35.0 * i as f64))
            .collect();
        let mut pop = UePopulation::new(plmn);
        for ue in &ues {
            pop.push(ue.clone());
        }
        let mut rng_a = SimRng::seed_from(42);
        let mut rng_b = SimRng::seed_from(42);
        let mut channels = Vec::new();
        for _ in 0..25 {
            // Old representation: loop per UE.
            for ue in &mut ues {
                m.step(ue, &mut rng_a);
            }
            let avg_a = slice_average_cqi(&ues, &c, &mut rng_a);
            let expect: Vec<UeChannel> = ues
                .iter()
                .map(|ue| {
                    let cqi = c.sample_cqi(ue.distance_m, &mut rng_a);
                    UeChannel {
                        ue: ue.id,
                        cqi,
                        prb_rate: cqi.map(|q| rates.rate(q)).unwrap_or(RateMbps::ZERO),
                    }
                })
                .collect();
            // New representation: columnar sweeps.
            pop.step_all(&m, &mut rng_b);
            let avg_b = pop.average_cqi(&c, &mut rng_b);
            pop.sample_channels_into(&c, &rates, &mut rng_b, &mut channels);
            assert_eq!(avg_a, avg_b);
            assert_eq!(channels, expect);
            for (i, ue) in ues.iter().enumerate() {
                assert_eq!(ue.distance_m.to_bits(), pop.get(i).distance_m.to_bits());
            }
        }
    }

    #[test]
    fn batched_sampling_matches_unbatched_across_slab_boundaries() {
        // 300 UEs spans two full slabs plus a partial one; the batched
        // sweep must equal the one-UE-at-a-time reference bit for bit.
        let c = ch();
        let plmn = PlmnId::test_slice_plmn(0);
        let rates = crate::cell::CellConfig::default_20mhz().rate_table();
        let mut pop = UePopulation::new(plmn);
        for i in 0..300u64 {
            pop.push(Ue::new(UeId::new(i), plmn, 20.0 + (i as f64 * 1.3) % 380.0));
        }
        let mut rng_a = SimRng::seed_from(7);
        let mut rng_b = SimRng::seed_from(7);
        let expect: Vec<UeChannel> = (0..pop.len())
            .map(|i| {
                let ue = pop.get(i);
                let cqi = c.sample_cqi(ue.distance_m, &mut rng_a);
                UeChannel {
                    ue: ue.id,
                    cqi,
                    prb_rate: cqi.map(|q| rates.rate(q)).unwrap_or(RateMbps::ZERO),
                }
            })
            .collect();
        let mut got = Vec::new();
        pop.sample_channels_into(&c, &rates, &mut rng_b, &mut got);
        assert_eq!(got, expect);
        // Both consumed the same number of draws.
        assert_eq!(rng_a.normal(0.0, 1.0), rng_b.normal(0.0, 1.0));
    }

    #[test]
    fn population_stationary_draws_nothing() {
        // A stationary fleet must not consume the stream (parity with
        // MobilityModel::step's early return).
        let plmn = PlmnId::test_slice_plmn(0);
        let mut pop = UePopulation::new(plmn);
        pop.push(Ue::new(UeId::new(1), plmn, 100.0));
        let mut rng = SimRng::seed_from(9);
        let mut probe = SimRng::seed_from(9);
        pop.step_all(&MobilityModel::stationary(), &mut rng);
        assert_eq!(rng.normal(0.0, 1.0), probe.normal(0.0, 1.0));
    }

    #[test]
    fn population_lifecycle_and_removal() {
        let plmn = PlmnId::test_slice_plmn(0);
        let mut pop = UePopulation::new(plmn);
        for i in 0..3 {
            pop.push(Ue::new(UeId::new(i), plmn, 50.0 + i as f64));
        }
        assert_eq!(pop.len(), 3);
        assert!(!pop.get(0).attached);
        pop.attach_all();
        assert!(pop.get(2).attached);
        let gone = pop.remove(UeId::new(1)).expect("member");
        assert_eq!(gone.id, UeId::new(1));
        assert_eq!(gone.distance_m, 51.0);
        assert!(pop.remove(UeId::new(1)).is_none(), "already removed");
        assert_eq!(pop.ids(), &[UeId::new(0), UeId::new(2)]);
        assert_eq!(pop.get(1).distance_m, 52.0, "columns stay parallel");
        assert!(!pop.is_empty());
    }

    #[test]
    fn empty_population_has_no_average() {
        let c = ch();
        let mut rng = SimRng::seed_from(4);
        let pop = UePopulation::new(PlmnId::test_slice_plmn(0));
        assert_eq!(pop.average_cqi(&c, &mut rng), None);
    }

    #[test]
    fn channel_serde_round_trip() {
        let c = ch();
        let j = serde_json::to_string(&c).unwrap();
        assert_eq!(serde_json::from_str::<ChannelModel>(&j).unwrap(), c);
    }
}
