//! Driving the orchestrator with the discrete-event kernel: Poisson slice
//! arrivals and monitoring epochs as *events* on one timeline, instead of
//! the fixed-step loop `DemoScenario` uses. Both drivers are equivalent;
//! this one shows the `ovnes-sim` engine doing what it is for.
//!
//! Run with: `cargo run --example event_driven`

use ovnes_bench::testbed_orchestrator;
use ovnes_orchestrator::{Orchestrator, OrchestratorConfig, RequestGenerator, RequestMix};
use ovnes_sim::{Clock, Engine, SimDuration, SimRng, SimTime};

#[derive(Debug, Clone, Copy, PartialEq)]
enum Event {
    /// A tenant submits a slice request from the dashboard.
    Arrival,
    /// A monitoring epoch closes.
    EpochTick,
    /// End of the simulated day.
    EndOfDay,
}

struct Demo {
    orchestrator: Orchestrator,
    generator: RequestGenerator,
    arrivals_per_hour: f64,
    admitted: u64,
    rejected: u64,
    done: bool,
}

impl ovnes_sim::Process<Event> for Demo {
    fn handle(&mut self, event: Event, clock: &mut Clock<'_, Event>) {
        match event {
            Event::Arrival => {
                let request = self.generator.generate();
                match self.orchestrator.submit(clock.now(), request) {
                    Ok(_) => self.admitted += 1,
                    Err(_) => self.rejected += 1,
                }
                if !self.done {
                    let next = self.generator.next_interarrival(self.arrivals_per_hour);
                    clock.schedule_in(next, Event::Arrival);
                }
            }
            Event::EpochTick => {
                let report = self.orchestrator.run_epoch(clock.now());
                if !report.activated.is_empty() || !report.expired.is_empty() {
                    println!(
                        "{}: active={} (+{} activated, -{} expired), net {}",
                        clock.now(),
                        report.active,
                        report.activated.len(),
                        report.expired.len(),
                        report.net_revenue
                    );
                }
                if !self.done {
                    clock.schedule_in(SimDuration::from_mins(1), Event::EpochTick);
                }
            }
            Event::EndOfDay => {
                self.done = true;
            }
        }
    }
}

fn main() {
    let mut rng = SimRng::seed_from(2018);
    let mut demo = Demo {
        orchestrator: testbed_orchestrator(OrchestratorConfig::default(), 2018),
        generator: RequestGenerator::new(
            RequestMix::default(),
            SimDuration::from_hours(1),
            rng.fork("requests"),
        ),
        arrivals_per_hour: 18.0,
        admitted: 0,
        rejected: 0,
        done: false,
    };

    let mut engine: Engine<Event> = Engine::new();
    engine.schedule_at(SimTime::from_secs(30), Event::Arrival);
    engine.schedule_at(SimTime::ZERO + SimDuration::from_mins(1), Event::EpochTick);
    engine.schedule_at(SimTime::ZERO + SimDuration::from_hours(4), Event::EndOfDay);

    // Run until the schedule drains (EndOfDay stops re-arming the timers).
    let fired = engine.run_to_completion(1_000_000, &mut demo);

    println!("\n{fired} events fired over {}", engine.now());
    println!("admitted {}  rejected {}", demo.admitted, demo.rejected);
    println!("net revenue: {}", demo.orchestrator.ledger().net());
    assert!(demo.admitted > 0);
}
