//! Vertical industries request heterogeneous slices — the paper's framing:
//! *"vertical industries — such as automotive, e-health — are considering
//! network slicing as a cost-effective solution for their digital
//! transformation"*.
//!
//! Four verticals request slices with very different SLAs; the orchestrator
//! places each where its SLA can hold (URLLC at the edge DC, throughput
//! slices in the core) and the demo's per-domain picture emerges.
//!
//! Run with: `cargo run --example vertical_slices`

use ovnes_bench::testbed_orchestrator;
use ovnes_model::{SliceClass, SliceRequest, TenantId};
use ovnes_orchestrator::OrchestratorConfig;
use ovnes_sim::SimTime;

fn main() {
    // The vertical presets the model crate ships (each is the dashboard
    // form a tenant of that industry would fill in).
    let verticals: Vec<(&str, SliceRequest)> = vec![
        (
            "automotive (V2X collision warnings)",
            SliceRequest::automotive(TenantId::new(0)),
        ),
        (
            "e-health (remote monitoring)",
            SliceRequest::e_health(TenantId::new(1)),
        ),
        (
            "media (4K streaming)",
            SliceRequest::media_streaming(TenantId::new(2)),
        ),
        (
            "utility (smart metering)",
            SliceRequest::smart_metering(TenantId::new(3)),
        ),
    ];

    let mut orchestrator = testbed_orchestrator(OrchestratorConfig::default(), 7);
    let mut slices = Vec::new();
    for (name, request) in verticals {
        let class = request.class;
        match orchestrator.submit(SimTime::ZERO, request) {
            Ok(id) => {
                let p = orchestrator.placement(id).expect("admitted");
                println!("{name:<38} -> {id}");
                println!(
                    "    class {:<6} {} on {}  path {} hops ({})  vEPC in {}",
                    class, p.reserved, p.enb, p.path_hops, p.path_delay, p.dc
                );
                slices.push(id);
            }
            Err(rej) => println!("{name:<38} -> REJECTED: {}", rej.reason),
        }
    }

    // Verify the latency story: URLLC slices must sit at the edge DC.
    println!("\nplacement check:");
    for &id in &slices {
        let record = orchestrator.record(id).expect("exists");
        let p = orchestrator.placement(id).expect("placed");
        let where_ = if p.dc.value() == 0 { "EDGE" } else { "core" };
        println!(
            "  {id}: {} slice terminated at the {} DC",
            record.request.class, where_
        );
        if record.request.class == SliceClass::Urllc {
            assert_eq!(p.dc.value(), 0, "URLLC must be at the edge");
        }
    }

    // Serve an hour of traffic and report each vertical's SLA scorecard.
    let epoch = orchestrator.config().epoch;
    for e in 1..=60u64 {
        orchestrator.run_epoch(SimTime::ZERO + epoch * e);
    }
    println!("\nSLA scorecard after 1 hour:");
    for &id in &slices {
        let r = orchestrator.record(id).expect("exists");
        println!(
            "  {id} ({:<6}) epochs {}  violated {}  availability {:.2}%  [{}]",
            r.request.class.label(),
            r.epochs_active,
            r.epochs_violated,
            r.availability() * 100.0,
            r.state,
        );
    }
    println!("\nnet revenue: {}", orchestrator.ledger().net());
}
