//! Quickstart: build the demo testbed, request a network slice from the
//! "dashboard", watch it deploy, serve traffic under SLA monitoring, and
//! tear down.
//!
//! Run with: `cargo run --example quickstart`

use ovnes_bench::testbed_orchestrator;
use ovnes_model::{Latency, Money, RateMbps, SliceClass, SliceRequest, TenantId};
use ovnes_orchestrator::OrchestratorConfig;
use ovnes_sim::{SimDuration, SimTime};

fn main() {
    // 1. The end-to-end orchestrator over the simulated Fig. 2 testbed:
    //    two MOCN eNBs, mmWave/µwave + OpenFlow transport, edge + core DCs.
    let mut orchestrator = testbed_orchestrator(OrchestratorConfig::default(), 42);

    // 2. Fill in the dashboard form: duration, latency bound, throughput,
    //    price, and the penalty we demand per violated epoch.
    let request = SliceRequest::builder(TenantId::new(1), SliceClass::Embb)
        .throughput(RateMbps::new(30.0))
        .max_latency(Latency::new(40.0))
        .duration(SimDuration::from_mins(45))
        .price(Money::from_units(120))
        .penalty(Money::from_units(6))
        .build()
        .expect("a valid request");

    // 3. Submit. Admission control + three-domain allocation happen here.
    let slice = match orchestrator.submit(SimTime::ZERO, request) {
        Ok(id) => id,
        Err(rejection) => {
            println!("rejected: {}", rejection.reason);
            return;
        }
    };
    let placement = orchestrator.placement(slice).expect("admitted").clone();
    println!("admitted {slice}");
    println!("  PLMN       {}", orchestrator.record(slice).unwrap().plmn.unwrap());
    println!("  eNB        {} ({} PRBs reserved)", placement.enb, placement.reserved);
    println!("  transport  {} hops, {} committed", placement.path_hops, placement.path_delay);
    println!("  cloud      {} (stack {})", placement.dc, placement.stack);
    println!("  deploys in {}", placement.deploy_time);

    // 4. Advance monitoring epochs: the slice activates after "a few
    //    seconds", then serves traffic under SLA monitoring.
    let epoch = orchestrator.config().epoch;
    for e in 1..=10u64 {
        let now = SimTime::ZERO + epoch * e;
        let report = orchestrator.run_epoch(now);
        if report.activated.contains(&slice) {
            println!("\nepoch {e}: slice ACTIVE (UEs attached to its PLMN)");
        }
        for v in &report.verdicts {
            println!(
                "epoch {e}: delivered {} of {} at {}  [{}]",
                v.delivered,
                v.entitled,
                v.latency,
                if v.met { "SLA met" } else { "SLA violated" }
            );
        }
    }

    // 5. Terminate early and settle the books.
    orchestrator.terminate(SimTime::ZERO + epoch * 11, slice);
    let ledger = orchestrator.ledger();
    println!("\nfinal accounting:");
    println!("  income     {}", ledger.gross_income());
    println!("  penalties  {}", ledger.total_penalties());
    println!("  net        {}", ledger.net());
}
