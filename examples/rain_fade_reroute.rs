//! Rain fade on the mmWave transport and the controller's reaction — the
//! failure mode the testbed's wireless transport (mmWave + µwave in
//! parallel, §2) is built to survive: when the mmWave hop degrades, slices
//! are rerouted over the µwave hop through the programmable switch.
//!
//! Run with: `cargo run --example rain_fade_reroute`

use ovnes_model::{DcId, EnbId, Latency, RateMbps, SliceId};
use ovnes_transport::{LinkKind, Topology, TransportController};

fn main() {
    let mut transport = TransportController::new(Topology::testbed(), 1024);
    let src = transport
        .topology()
        .radio_site(EnbId::new(0))
        .expect("testbed has enb0");
    let dst = transport
        .topology()
        .dc_node(DcId::new(0))
        .expect("testbed has the edge DC");

    // Two slices share the mmWave uplink (1 Gbps).
    for (i, bw) in [(1u64, 300.0), (2, 250.0)] {
        let alloc = transport
            .allocate(SliceId::new(i), src, dst, RateMbps::new(bw), Latency::new(5.0))
            .expect("plenty of capacity");
        println!(
            "slice-{i}: {bw} Mbps over {} hops, committed delay {}",
            alloc.reservation.path.hops(),
            alloc.delay_at_allocation
        );
    }

    let mm = transport
        .topology()
        .links()
        .iter()
        .find(|l| l.kind == LinkKind::MmWave && l.a == src || l.b == src)
        .map(|l| l.id)
        .expect("enb0 has a mmWave uplink");

    println!("\n*** rain cell moves in: mmWave link {mm} degrades to 20% capacity ***");
    let affected = transport.degrade_link(mm, 0.2);
    println!("slices oversubscribed by the fade: {affected:?}");

    for slice in affected {
        match transport.reroute(slice) {
            Ok(true) => {
                let path = &transport.reservation(slice).expect("still placed").path;
                let delay = transport.path_delay(slice).expect("has a path");
                println!("  {slice} rerouted: now {} hops, delay {delay}", path.hops());
            }
            Ok(false) => println!("  {slice} could not move (µwave full), riding out the fade"),
            Err(e) => println!("  {slice} reroute error: {e}"),
        }
    }

    println!("\n*** rain passes: restoring link ***");
    transport.restore_link(mm);
    let snapshot = transport.snapshot();
    for row in &snapshot.links {
        if row.reserved.value() > 0.0 {
            println!(
                "  link {}: {} reserved of {} ({:.0}% utilized)",
                row.link,
                row.reserved,
                row.effective_capacity,
                row.utilization * 100.0
            );
        }
    }
    println!(
        "\nreroutes performed: {}",
        transport
            .metrics()
            .counter_value("transport.reroutes")
            .unwrap_or(0)
    );
}
