//! The hierarchical controller architecture of §2, explicitly: the RAN
//! controller lives behind a REST-like endpoint on the message bus, and an
//! "orchestrator side" drives it purely through JSON commands — every byte
//! crosses the wire format, exactly as the testbed's REST APIs did.
//!
//! Run with: `cargo run --example rest_controllers`

use ovnes_api::{decode, encode, MessageBus, MonitoringReport, RanCommand, RanReply, Response, Status};
use ovnes_model::{EnbId, PlmnId, Prbs, SliceId};
use ovnes_ran::{CellConfig, Enb, RanController};
use ovnes_sim::SimTime;
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    // The RAN controller, owned by its "REST server".
    let ran = Rc::new(RefCell::new(RanController::new(vec![
        Enb::new(EnbId::new(0), CellConfig::default_20mhz()),
        Enb::new(EnbId::new(1), CellConfig::default_20mhz()),
    ])));

    let mut bus = MessageBus::new();

    // Command endpoint: decode → execute → encode.
    let ran_cmd = ran.clone();
    bus.register("ran/command", move |req| {
        let cmd: RanCommand = match decode(&req.body) {
            Ok(c) => c,
            Err(e) => return Response::error(req.id, &e.to_string()),
        };
        let mut ran = ran_cmd.borrow_mut();
        let result = match cmd {
            RanCommand::InstallPlmn { enb, slice, plmn, reserved, nominal } => ran
                .install(enb, slice, plmn, reserved, nominal)
                .map(|()| RanReply::Done),
            RanCommand::Resize { slice, reserved } => {
                ran.resize(slice, reserved).map(|()| RanReply::Done)
            }
            RanCommand::Release { slice } => ran.release(slice).map(|r| RanReply::Released {
                freed: r.reserved,
            }),
        };
        match result {
            Ok(reply) => Response::ok(req.id, encode(&reply).expect("encodable")),
            Err(e) => Response::rejected(req.id, e.to_string().into_bytes()),
        }
    });

    // Monitoring endpoint: the periodic report the orchestrator polls.
    let ran_mon = ran.clone();
    bus.register("ran/monitoring", move |req| {
        let report = MonitoringReport {
            domain: "ran".into(),
            at: SimTime::ZERO,
            scalars: ran_mon.borrow().metrics().scalar_snapshot(),
        };
        Response::ok(req.id, encode(&report).expect("encodable"))
    });

    // --- the orchestrator side: pure JSON in, JSON out -------------------
    let call = |bus: &mut MessageBus, cmd: &RanCommand| -> (Status, String) {
        let resp = bus
            .call("ran/command", encode(cmd).expect("encodable"))
            .expect("endpoint registered");
        let detail = match resp.status {
            Status::Ok => format!("{:?}", decode::<RanReply>(&resp.body).expect("reply")),
            _ => String::from_utf8_lossy(&resp.body).into_owned(),
        };
        (resp.status, detail)
    };

    println!("install slice-1 (60 PRBs on enb-0):");
    let (status, detail) = call(&mut bus, &RanCommand::InstallPlmn {
        enb: EnbId::new(0),
        slice: SliceId::new(1),
        plmn: PlmnId::test_slice_plmn(0),
        reserved: Prbs::new(60),
        nominal: Prbs::new(60),
    });
    println!("  -> {status}: {detail}");

    println!("install slice-2 (60 PRBs on enb-0) — must be rejected (40 free):");
    let (status, detail) = call(&mut bus, &RanCommand::InstallPlmn {
        enb: EnbId::new(0),
        slice: SliceId::new(2),
        plmn: PlmnId::test_slice_plmn(1),
        reserved: Prbs::new(60),
        nominal: Prbs::new(60),
    });
    println!("  -> {status}: {detail}");
    assert_eq!(status, Status::Rejected);

    println!("overbooking reconfiguration: shrink slice-1 to 35 PRBs:");
    let (status, detail) = call(&mut bus, &RanCommand::Resize {
        slice: SliceId::new(1),
        reserved: Prbs::new(35),
    });
    println!("  -> {status}: {detail}");

    println!("retry slice-2 — now it fits:");
    let (status, detail) = call(&mut bus, &RanCommand::InstallPlmn {
        enb: EnbId::new(0),
        slice: SliceId::new(2),
        plmn: PlmnId::test_slice_plmn(1),
        reserved: Prbs::new(60),
        nominal: Prbs::new(60),
    });
    println!("  -> {status}: {detail}");
    assert_eq!(status, Status::Ok);

    println!("release slice-1:");
    let (status, detail) = call(&mut bus, &RanCommand::Release { slice: SliceId::new(1) });
    println!("  -> {status}: {detail}");

    // Monitoring poll.
    let resp = bus.call("ran/monitoring", Vec::new()).expect("registered");
    let report: MonitoringReport = decode(&resp.body).expect("report");
    println!("\nmonitoring report ({} scalars):", report.scalars.len());
    for (k, v) in &report.scalars {
        println!("  {k} = {v}");
    }
    println!("\nbus stats: {} commands, {} monitoring polls",
             bus.served("ran/command"), bus.served("ran/monitoring"));
}
