//! The demo, end to end: a day of heterogeneous slice requests handled by
//! the overbooking orchestrator, rendered as the control dashboard the
//! paper describes — slice table, per-domain utilization, and the
//! multiplexing gain / penalty panel.
//!
//! Run with: `cargo run --example overbooking_dashboard`

use ovnes_dashboard::{to_csv, DashboardView};
use ovnes_orchestrator::{DemoScenario, ScenarioConfig};
use ovnes_sim::SimDuration;
use std::fs;

fn main() {
    let mut config = ScenarioConfig {
        seed: 2018, // SIGCOMM'18
        arrivals_per_hour: 24.0,
        horizon: SimDuration::from_hours(8),
        mean_duration: SimDuration::from_hours(2),
        ..ScenarioConfig::default()
    };
    // Hour-scale seasonality compressed into 12 epochs so forecasts warm
    // within the run.
    config.orchestrator.overbooking.season_period = 12;
    config.orchestrator.overbooking.min_residuals = 8;

    println!("running the demo: 8 hours, ~24 slice requests/hour, overbooking on\n");
    let mut scenario = DemoScenario::build(config);
    let summary = scenario.run();

    // The dashboard, as it looks at the end of the day.
    let view = DashboardView::capture(scenario.orchestrator());
    println!("{}", view.render());

    println!("── day summary ──────────────────────────────────────────────");
    println!("  requests submitted         {}", summary.submitted);
    println!(
        "  admitted                   {} ({:.0}%)",
        summary.admitted,
        summary.admission_rate() * 100.0
    );
    println!("  completed lifetimes        {}", summary.expired);
    println!(
        "  mean concurrently active   {:.1} slices",
        summary.mean_active
    );
    println!(
        "  capacity released (mean)   {:.0}% of sold PRBs",
        summary.mean_savings * 100.0
    );
    println!(
        "  overbooking factor         mean {:.2}x  peak {:.2}x",
        summary.mean_overbooking_factor, summary.peak_overbooking_factor
    );
    println!(
        "  SLA violations             {:.1}% of slice-epochs",
        summary.violation_rate() * 100.0
    );
    println!("  income                     {}", summary.gross_income);
    println!("  penalties                  {}", summary.penalties);
    println!("  NET                        {}", summary.net_revenue);

    // Per-slice drill-down: the longest-serving slice's charts.
    let orchestrator = scenario.orchestrator();
    if let Some(busiest) = orchestrator
        .records()
        .max_by_key(|r| r.epochs_active)
        .map(|r| r.id)
    {
        println!("\n── slice detail ─────────────────────────────────────────────");
        if let Some(detail) = DashboardView::slice_detail(orchestrator, busiest) {
            println!("{detail}");
        }
        // Export the slice's timeline plus the overbooking series as CSV
        // (the raw material of the demo dashboard's charts).
        if let Some(timeline) = orchestrator.timeline(busiest) {
            let mut series = vec![
                ("offered_mbps", &timeline.offered),
                ("delivered_mbps", &timeline.delivered),
                ("latency_ms", &timeline.latency),
            ];
            let savings = orchestrator
                .metrics()
                .series_ref("orchestrator.savings_fraction");
            if let Some(sv) = savings {
                series.push(("savings_fraction", sv));
            }
            let csv = to_csv(&series);
            let path = std::env::temp_dir().join("ovnes_dashboard_export.csv");
            if fs::write(&path, &csv).is_ok() {
                println!(
                    "exported {} rows of dashboard data to {}",
                    csv.lines().count() - 1,
                    path.display()
                );
            }
        }
    }
}
