//! Property tests for the checkpoint/restore subsystem: for arbitrary
//! seeds, workloads, and cut points, `restore(snapshot(s)) == s`
//! structurally, and a restored world's next epoch is bitwise-equal to the
//! uninterrupted one's.

use ovnes_api::{EndpointFaults, FaultPlan};
use ovnes_orchestrator::{ChaosScenario, DemoScenario, RequestMix, ScenarioConfig, WorldSnapshot};
use ovnes_sim::SimDuration;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn scratch(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ovnes-roundtrip-{}-{tag}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(seed: u64, arrivals: f64, embb: f64) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        arrivals_per_hour: arrivals,
        mix: RequestMix {
            embb,
            urllc: (1.0 - embb) * 0.6,
            mmtc: (1.0 - embb) * 0.4,
        },
        mean_duration: SimDuration::from_mins(45),
        horizon: SimDuration::from_hours(2),
        ..ScenarioConfig::default()
    }
}

proptest! {
    // A full scenario run per case is expensive; a handful of cases per
    // property still sweeps seeds, load levels, and cut points every run.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// restore(snapshot(s)) == s structurally, for arbitrary worlds.
    #[test]
    fn restore_of_snapshot_is_structurally_identical(
        seed in 0u64..10_000,
        arrivals in 5.0f64..40.0,
        embb in 0.2f64..0.8,
        cut in 1usize..20,
    ) {
        let mut live = DemoScenario::build(config(seed, arrivals, embb));
        for _ in 0..cut {
            prop_assert!(live.step_epoch());
        }
        let state = live.export_state();
        let world = WorldSnapshot::open(scratch("structural")).unwrap();
        let manifest = world.snapshot(&state).unwrap();
        prop_assert_eq!(manifest.epoch as usize, cut);
        let restored = world.restore(cut as u64).unwrap();
        prop_assert_eq!(&restored, &state);
    }

    /// One epoch after a restore is bitwise-equal to one epoch
    /// uninterrupted: the exported states serialize to identical bytes.
    #[test]
    fn post_restore_epoch_is_bitwise_equal_to_uninterrupted(
        seed in 0u64..10_000,
        cut in 1usize..16,
    ) {
        let mut uninterrupted = DemoScenario::build(config(seed, 20.0, 0.5));
        for _ in 0..cut {
            prop_assert!(uninterrupted.step_epoch());
        }
        let world = WorldSnapshot::open(scratch("bitwise")).unwrap();
        world.snapshot(&uninterrupted.export_state()).unwrap();
        let (_, state) = world.restore_latest().unwrap().unwrap();
        let mut restored = DemoScenario::from_state(&state);

        prop_assert_eq!(uninterrupted.step_epoch(), restored.step_epoch());
        let a = serde_json::to_vec(&uninterrupted.export_state()).unwrap();
        let b = serde_json::to_vec(&restored.export_state()).unwrap();
        prop_assert_eq!(a, b, "first post-restore epoch diverged bitwise");
    }

    /// The same contract holds with an active control-plane fault plan: the
    /// injector's schedule position and jitter stream survive the wire.
    #[test]
    fn chaos_restore_resumes_fault_schedule_bitwise(
        seed in 0u64..10_000,
        drop_p in 0.05f64..0.45,
        cut in 1usize..12,
    ) {
        let plan = FaultPlan::new(seed ^ 0xFA17)
            .with_endpoint("ran/health", EndpointFaults::none().with_drop(drop_p))
            .with_endpoint("cloud/health", EndpointFaults::none().with_error(0.1));
        let mut uninterrupted = ChaosScenario::build(config(seed, 20.0, 0.5), plan);
        for _ in 0..cut {
            prop_assert!(uninterrupted.step_epoch());
        }
        let world = WorldSnapshot::open(scratch("chaos")).unwrap();
        world.snapshot(&uninterrupted.export_state()).unwrap();
        let (_, state) = world.restore_latest().unwrap().unwrap();
        let mut restored = ChaosScenario::from_state(&state);

        for _ in 0..3 {
            prop_assert_eq!(uninterrupted.step_epoch(), restored.step_epoch());
        }
        let a = serde_json::to_vec(&uninterrupted.export_state()).unwrap();
        let b = serde_json::to_vec(&restored.export_state()).unwrap();
        prop_assert_eq!(a, b, "chaos run diverged bitwise after restore");
    }

    /// Snapshot chains are self-consistent: every checkpoint in a chain
    /// restores, and restoring an *earlier* epoch and replaying forward
    /// reproduces the *later* checkpoint exactly.
    #[test]
    fn replaying_from_any_checkpoint_reproduces_later_checkpoints(
        seed in 0u64..10_000,
        first in 1usize..8,
        gap in 1usize..8,
    ) {
        let world = WorldSnapshot::open(scratch("chain")).unwrap();
        let mut live = DemoScenario::build(config(seed, 20.0, 0.5));
        for _ in 0..first {
            prop_assert!(live.step_epoch());
        }
        world.snapshot(&live.export_state()).unwrap();
        for _ in 0..gap {
            prop_assert!(live.step_epoch());
        }
        let later = live.export_state();
        world.snapshot(&later).unwrap();

        let mut replayed = DemoScenario::from_state(&world.restore(first as u64).unwrap());
        for _ in 0..gap {
            prop_assert!(replayed.step_epoch());
        }
        prop_assert_eq!(&replayed.export_state(), &later);
    }
}
