//! Integration: supervised process-level chaos against the undisturbed run.
//!
//! The acceptance contract for the supervision layer (`ovnes_orchestrator::
//! supervise`): a seeded crash storm that kills and restarts every domain
//! controller server — at least once mid-request, with the zombie response
//! provably generated and rejected — leaves the run summary, dashboard,
//! and monitoring JSON **byte-identical** to a run with no supervisor at
//! all, at 1, 2, and 8 workers. Unsupervised outages, by contrast, must
//! walk the orchestrator's heartbeat health machine and book repair
//! telemetry.

use ovnes_api::rpc::{register_control_endpoints, Router, RpcServer};
use ovnes_api::CrashPlan;
use ovnes_dashboard::DashboardView;
use ovnes_orchestrator::{
    run_supervised, spawn_domain_control_servers, DemoScenario, HealthState, ScenarioConfig,
    Supervisor, DOMAINS,
};
use ovnes_sim::SimDuration;

fn config(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        arrivals_per_hour: 25.0,
        horizon: SimDuration::from_hours(2),
        ..ScenarioConfig::default()
    }
}

/// Everything a supervisor could possibly perturb: the run summary, the
/// rendered dashboard, and the byte-exact JSON of every monitoring report.
fn artifacts(orch: &ovnes_orchestrator::Orchestrator) -> (String, Vec<String>) {
    let dashboard = DashboardView::capture(orch).render();
    let monitoring = orch
        .monitoring()
        .iter()
        .map(|r| serde_json::to_string(r).unwrap())
        .collect();
    (dashboard, monitoring)
}

#[test]
fn crash_storm_is_byte_invisible_at_every_worker_count() {
    // The oracle: one serial, unsupervised, in-process run.
    let (reference, ref_dash, ref_monitoring) = {
        ovnes_sim::par::set_thread_override(Some(1));
        let mut s = DemoScenario::build(config(404));
        let summary = s.run();
        let (dash, monitoring) = artifacts(s.orchestrator());
        ovnes_sim::par::set_thread_override(None);
        (summary, dash, monitoring)
    };

    for threads in [1usize, 2, 8] {
        ovnes_sim::par::set_thread_override(Some(threads));
        let (servers, socket) = spawn_domain_control_servers().unwrap();
        let mut s = DemoScenario::build(config(404));
        s.use_socket_control(socket);
        // Every controller killed and restarted twice, the first ran crash
        // landing mid-request, all drawn from the plan's own seed.
        let plan =
            CrashPlan::new(404).with_random_storm(&["ran", "transport", "cloud"], 2, 5, 100);
        let mut supervisor = Supervisor::new(servers, plan);
        let summary = run_supervised(&mut s, &mut supervisor);
        let (dash, monitoring) = artifacts(s.orchestrator());
        ovnes_sim::par::set_thread_override(None);

        assert_eq!(
            summary, reference,
            "{threads}-worker crash-storm summary diverged from undisturbed run"
        );
        assert_eq!(dash, ref_dash, "{threads}-worker crash-storm dashboard diverged");
        assert_eq!(
            monitoring, ref_monitoring,
            "{threads}-worker crash-storm monitoring JSON diverged"
        );

        // The storm was real: six kill-and-restart cycles, one of them with
        // a provably generated-and-rejected zombie response.
        assert_eq!(supervisor.crashes(), 6);
        assert_eq!(supervisor.mid_request_crashes(), 1);
        assert!(supervisor.stale_rejections_provoked() >= 1);
        assert!(
            s.orchestrator().control().stale_rejections() >= 1,
            "no stale response was rejected on the wire"
        );
        assert_eq!(supervisor.mttr_wall_secs().len(), 6);
        // Two crashes per domain: every server is its third incarnation.
        for (domain, term) in supervisor.terms() {
            assert_eq!(term, 3, "{domain}");
        }
    }
}

#[test]
fn hung_servers_stay_invisible_within_the_read_deadline() {
    let (reference, ref_dash, ref_monitoring) = {
        let mut s = DemoScenario::build(config(505));
        let summary = s.run();
        let (dash, monitoring) = artifacts(s.orchestrator());
        (summary, dash, monitoring)
    };

    let (servers, socket) = spawn_domain_control_servers().unwrap();
    let mut s = DemoScenario::build(config(505));
    s.use_socket_control(socket);
    // Each domain hangs for 50 ms — well under the client read deadline,
    // so every probe in the window just takes longer and still succeeds.
    let plan = CrashPlan::new(505)
        .with_hang("ran", 10, 50)
        .with_hang("transport", 40, 50)
        .with_hang("cloud", 70, 50);
    let mut supervisor = Supervisor::new(servers, plan);
    let summary = run_supervised(&mut s, &mut supervisor);
    let (dash, monitoring) = artifacts(s.orchestrator());

    assert_eq!(summary, reference, "hung-server summary diverged");
    assert_eq!(dash, ref_dash, "hung-server dashboard diverged");
    assert_eq!(monitoring, ref_monitoring, "hung-server monitoring diverged");
    assert_eq!(supervisor.hangs(), 3);
    assert_eq!(supervisor.crashes(), 0);
    // No incarnation changed: a hang is not a crash.
    for (domain, term) in supervisor.terms() {
        assert_eq!(term, 1, "{domain}");
    }
}

#[test]
fn unsupervised_outage_walks_the_health_machine() {
    let (mut servers, socket) = spawn_domain_control_servers().unwrap();
    let mut s = DemoScenario::build(ScenarioConfig {
        seed: 606,
        arrivals_per_hour: 25.0,
        horizon: SimDuration::from_hours(1),
        ..ScenarioConfig::default()
    });
    s.use_socket_control(socket);

    for _ in 0..5 {
        assert!(s.step_epoch());
    }
    for domain in DOMAINS {
        assert_eq!(
            s.orchestrator().domain_health(domain).unwrap().state,
            HealthState::Up
        );
    }

    // Kill the RAN controller server with nobody supervising it.
    let mut ran = servers.remove(0);
    let carry = ran.stats();
    ran.shutdown();
    drop(ran);

    // One failed probe suspects, a second declares the domain down.
    assert!(s.step_epoch());
    assert_eq!(
        s.orchestrator().domain_health("ran").unwrap().state,
        HealthState::Suspect
    );
    assert!(s.step_epoch());
    let health = *s.orchestrator().domain_health("ran").unwrap();
    assert_eq!(health.state, HealthState::Down);
    assert_eq!(health.incidents, 1);

    // Operator repair: a fresh incarnation on a new port, routed and
    // fenced, with the resync marked on the health machine.
    let mut router = Router::new();
    register_control_endpoints(&mut router, "ran");
    let restarted = RpcServer::spawn_incarnation(router, 2, carry).unwrap();
    {
        let bus = s
            .orchestrator_mut()
            .control_mut()
            .socket_mut()
            .expect("socket control plane");
        bus.attach(&restarted);
        bus.fence("ran", 2);
    }
    s.orchestrator_mut().mark_resyncing("ran");
    assert_eq!(
        s.orchestrator().domain_health("ran").unwrap().state,
        HealthState::Resyncing
    );

    // The next successful probe books the repair: two minutes of downtime
    // from the first failed probe to the recovering one.
    assert!(s.step_epoch());
    let health = *s.orchestrator().domain_health("ran").unwrap();
    assert_eq!(health.state, HealthState::Up);
    assert_eq!(health.repairs, 1);
    assert_eq!(health.failed_probes, 2);

    let m = s.orchestrator().metrics();
    assert_eq!(m.counter_value("supervise.suspects"), Some(1));
    assert_eq!(m.counter_value("supervise.downs"), Some(1));
    assert_eq!(m.counter_value("supervise.repairs"), Some(1));
    let ttr = m.series_ref("supervise.time_to_repair").unwrap();
    assert_eq!(ttr.values(), vec![120.0]);

    // The repair shows on the dashboard's SUPERVISION panel.
    let rendered = DashboardView::capture(s.orchestrator()).render();
    assert!(
        rendered.contains("suspects 1   downs 1   repairs 1"),
        "{rendered}"
    );
    assert!(
        rendered.contains("time to repair: mean 120 s over 1 incident(s)"),
        "{rendered}"
    );
}
