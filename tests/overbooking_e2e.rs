//! Integration: the paper's headline claims, end to end.
//!
//! 1. Overbooking admits more slices than peak reservation on the same
//!    infrastructure and workload (the multiplexing gain).
//! 2. The gain costs a bounded violation rate controlled by the quantile.
//! 3. Reconfiguration actually moves reservations in the RAN and transport.

use ovnes_orchestrator::{DemoScenario, PolicyKind, ScenarioConfig};
use ovnes_sim::SimDuration;

fn pressured(seed: u64, overbooking: bool, quantile: f64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig {
        seed,
        arrivals_per_hour: 40.0,
        horizon: SimDuration::from_hours(10),
        mean_duration: SimDuration::from_hours(3),
        ..ScenarioConfig::default()
    };
    cfg.orchestrator.overbooking.season_period = 12;
    cfg.orchestrator.overbooking.min_residuals = 8;
    cfg.orchestrator.overbooking.quantile = quantile;
    cfg.orchestrator.overbooking_enabled = overbooking;
    cfg.orchestrator.policy = if overbooking {
        PolicyKind::OverbookingAware
    } else {
        PolicyKind::Fcfs
    };
    cfg
}

#[test]
fn overbooking_yields_multiplexing_gain() {
    let mut gains = Vec::new();
    for seed in [1u64, 2, 3] {
        let ob = DemoScenario::build(pressured(seed, true, 0.95)).run();
        let base = DemoScenario::build(pressured(seed, false, 0.95)).run();
        assert!(
            ob.admitted > base.admitted,
            "seed {seed}: overbooked {} <= baseline {}",
            ob.admitted,
            base.admitted
        );
        gains.push(ob.admitted as f64 / base.admitted as f64);
        // The savings metric must actually be positive under overbooking
        // and exactly zero under the baseline.
        assert!(ob.mean_savings > 0.05, "savings {}", ob.mean_savings);
        assert_eq!(base.mean_savings, 0.0);
        // Overbooking factor exceeds 1 at some point: capacity was resold.
        assert!(ob.peak_overbooking_factor > 1.0);
    }
    let mean_gain = gains.iter().sum::<f64>() / gains.len() as f64;
    assert!(
        mean_gain > 1.15,
        "multiplexing gain should be well above 1: {mean_gain:.2}"
    );
}

#[test]
fn aggressiveness_trades_violations_for_admissions() {
    let conservative = DemoScenario::build(pressured(5, true, 0.99)).run();
    let aggressive = DemoScenario::build(pressured(5, true, 0.50)).run();
    assert!(
        aggressive.admitted >= conservative.admitted,
        "aggressive admits at least as many: {} vs {}",
        aggressive.admitted,
        conservative.admitted
    );
    assert!(
        aggressive.violation_rate() >= conservative.violation_rate(),
        "aggressive violates at least as often: {} vs {}",
        aggressive.violation_rate(),
        conservative.violation_rate()
    );
    // And the conservative configuration stays comfortably safe.
    assert!(conservative.violation_rate() < 0.15);
}

#[test]
fn reconfiguration_counter_moves_under_overbooking() {
    let mut s = DemoScenario::build(pressured(9, true, 0.9));
    s.run();
    let reconfigs = s
        .orchestrator()
        .metrics()
        .counter_value("orchestrator.reconfigurations")
        .unwrap_or(0);
    assert!(reconfigs > 0, "overbooking must actually reconfigure");
}

#[test]
fn baseline_never_reconfigures() {
    let mut s = DemoScenario::build(pressured(9, false, 0.9));
    s.run();
    assert_eq!(
        s.orchestrator()
            .metrics()
            .counter_value("orchestrator.reconfigurations")
            .unwrap_or(0),
        0
    );
}

#[test]
fn net_revenue_positive_at_sane_quantiles() {
    for q in [0.9, 0.95] {
        let s = DemoScenario::build(pressured(11, true, q)).run();
        assert!(
            s.net_revenue.cents() > 0,
            "q={q}: net {} should be positive",
            s.net_revenue
        );
        assert!(s.gross_income > s.penalties);
    }
}
