//! Integration: the federated world is one deterministic machine.
//!
//! Acceptance contract for the sharding layer (`ovnes_orchestrator::
//! federation`): a multi-region run — including cross-region spill
//! admission over the backbone and combined control-plane + substrate
//! chaos inside every region — produces byte-identical summaries,
//! monitoring feeds, and dashboards at 1, 2, and 8 workers per shard, and
//! a federation snapshot cut mid-run under one worker count resumes
//! bit-for-bit under another. CI runs this suite with
//! `RAYON_NUM_THREADS=2` as the 2-workers-per-shard determinism gate.

use ovnes_api::{EndpointFaults, FaultPlan, SubstrateElement, SubstrateFaultPlan};
use ovnes_dashboard::{DashboardView, RegionsPanel};
use ovnes_model::LinkId;
use ovnes_orchestrator::{FederationBroker, FederationConfig, FederationSummary, WorldSnapshot};
use ovnes_sim::par::set_thread_override;
use ovnes_sim::SimDuration;
use std::path::PathBuf;
use std::sync::Mutex;

/// The worker override is process-global; runs that change it take this.
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

fn config(seed: u64, regions: usize) -> FederationConfig {
    FederationConfig {
        seed,
        regions,
        // Heavy enough that home regions reject and the broker spills.
        arrivals_per_hour: 40.0,
        mean_duration: SimDuration::from_mins(45),
        horizon: SimDuration::from_hours(2),
        ..FederationConfig::default()
    }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ovnes-federation-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Everything a worker count could possibly perturb: the summary, every
/// region's rendered dashboard, and the byte-exact JSON of the
/// region-prefixed monitoring feed.
fn artifacts(fed: &FederationBroker, summary: &FederationSummary) -> Vec<String> {
    let mut out = vec![serde_json::to_string(summary).unwrap()];
    for r in 0..fed.region_count() {
        out.push(DashboardView::capture(fed.orchestrator(r)).render());
    }
    out.extend(
        fed.monitoring()
            .iter()
            .map(|m| serde_json::to_string(m).unwrap()),
    );
    out
}

#[test]
fn federated_run_is_byte_identical_at_1_2_and_8_workers_per_shard() {
    let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let run_at = |threads: usize| {
        set_thread_override(Some(threads));
        let mut fed = FederationBroker::build(config(1901, 3));
        let summary = fed.run();
        let arts = artifacts(&fed, &summary);
        set_thread_override(None);
        (summary, arts)
    };
    let (summary, reference) = run_at(1);
    assert!(summary.spilled > 0, "load should overflow home regions");
    assert_eq!(reference, run_at(2).1, "1 vs 2 workers per shard");
    assert_eq!(reference, run_at(8).1, "1 vs 8 workers per shard");
}

#[test]
fn chaotic_federation_stays_byte_identical_across_worker_counts() {
    let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let run_at = |threads: usize| {
        set_thread_override(Some(threads));
        let mut fed = FederationBroker::build(config(1902, 2));
        for r in 0..fed.region_count() {
            // Control-plane chaos: the monitoring path drops ~30% of
            // health polls; substrate chaos: the first transport link
            // flaps at random through the horizon. Seeds differ per
            // region so shards fail independently.
            fed.orchestrator_mut(r).set_fault_plan(
                FaultPlan::new(300 + r as u64)
                    .with_endpoint("ran/health", EndpointFaults::none().with_drop(0.3))
                    .with_endpoint("cloud/health", EndpointFaults::none().with_drop(0.2)),
            );
            fed.orchestrator_mut(r).set_substrate_plan(
                SubstrateFaultPlan::new(400 + r as u64).with_random_outages(
                    &[SubstrateElement::Link(LinkId::new(0))],
                    0.5,
                    SimDuration::from_mins(10),
                    SimDuration::from_hours(2),
                ),
            );
        }
        let summary = fed.run();
        let arts = artifacts(&fed, &summary);
        set_thread_override(None);
        arts
    };
    let reference = run_at(1);
    assert_eq!(reference, run_at(2), "chaos, 1 vs 2 workers per shard");
    assert_eq!(reference, run_at(8), "chaos, 1 vs 8 workers per shard");
}

#[test]
fn snapshot_cut_under_one_worker_count_resumes_under_another() {
    let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());

    set_thread_override(Some(1));
    let reference = FederationBroker::build(config(1903, 2)).run();
    set_thread_override(None);

    // Cut a snapshot mid-run at 2 workers per shard.
    set_thread_override(Some(2));
    let mut fed = FederationBroker::build(config(1903, 2));
    for _ in 0..25 {
        assert!(fed.step_epoch());
    }
    let snap = WorldSnapshot::open(scratch("resume")).unwrap();
    let manifest = snap.snapshot_federation(&fed.export_state()).unwrap();
    assert_eq!(manifest.epoch, 25);
    set_thread_override(None);

    // Resume it at 8: the finish must match the uninterrupted serial run.
    set_thread_override(Some(8));
    let state = snap.restore_federation(25).unwrap();
    let resumed = FederationBroker::from_state(&state).run();
    set_thread_override(None);
    assert_eq!(resumed, reference, "resume across worker counts diverged");
}

#[test]
fn regions_panel_folds_the_federated_monitoring_feed() {
    let mut fed = FederationBroker::build(config(1904, 3));
    for _ in 0..30 {
        assert!(fed.step_epoch());
    }
    let mut panel = RegionsPanel::new();
    let mut repaints = 0usize;
    for report in fed.monitoring() {
        repaints += panel.apply(report).len();
    }
    assert_eq!(panel.regions(), vec![0, 1, 2], "every shard reports");
    assert!(repaints > 0, "pushes must repaint scalar cells");
    let rendered = panel.render();
    for r in 0..3 {
        assert!(rendered.contains(&format!("r{r}")), "{rendered}");
    }
}
