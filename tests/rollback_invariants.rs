//! Integration: the two-phase allocator's rollback invariant — a failed
//! allocation leaves NO residue in any domain, whichever phase failed.

use ovnes_cloud::host::HostCapacity;
use ovnes_cloud::{CloudController, DataCenter, DcKind, PlacementStrategy};
use ovnes_model::{
    DcId, DiskGb, EnbId, Latency, MemMb, PlmnId, RateMbps, SliceClass, SliceId,
    SliceRequest, TenantId, VCpus,
};
use ovnes_orchestrator::allocator::AllocatorConfig;
use ovnes_orchestrator::MultiDomainAllocator;
use ovnes_ran::{CellConfig, Enb, RanController};
use ovnes_transport::{Topology, TransportController};

fn cap(v: u32, m: u64, d: u64) -> HostCapacity {
    HostCapacity {
        vcpus: VCpus::new(v),
        mem: MemMb::new(m),
        disk: DiskGb::new(d),
    }
}

fn assert_clean(ran: &RanController, transport: &TransportController, cloud: &CloudController) {
    assert!(
        ran.snapshot().enbs.iter().all(|r| r.reserved.is_zero() && r.plmns == 0),
        "RAN residue: {:?}",
        ran.snapshot()
    );
    let t = transport.snapshot();
    assert_eq!(t.paths, 0, "transport path residue");
    assert!(
        t.links.iter().all(|l| l.reserved.is_zero()),
        "transport bandwidth residue: {t:?}"
    );
    let c = cloud.snapshot();
    assert_eq!(c.stacks, 0, "cloud stack residue");
    assert!(c.dcs.iter().all(|d| d.vms == 0), "cloud VM residue: {c:?}");
}

fn request(class: SliceClass, tp: f64) -> SliceRequest {
    SliceRequest::builder(TenantId::new(1), class)
        .throughput(RateMbps::new(tp))
        .build()
        .unwrap()
}

#[test]
fn ran_phase_failure_leaves_no_residue() {
    let mut ran = RanController::new(vec![Enb::new(EnbId::new(0), CellConfig::default_20mhz())]);
    let mut transport = TransportController::new(Topology::testbed(), 1024);
    let mut cloud = CloudController::new(vec![DataCenter::homogeneous(
        DcId::new(1),
        DcKind::Core,
        4,
        cap(32, 65536, 500),
        PlacementStrategy::WorstFit,
    )]);
    let a = MultiDomainAllocator::new(AllocatorConfig::default());
    // 150 PRBs on a 100-PRB cell.
    let req = request(SliceClass::Embb, 75.0);
    let err = a.allocate(
        SliceId::new(1),
        PlmnId::test_slice_plmn(0),
        &req,
        a.nominal_prbs(&req),
        &mut ran,
        &mut transport,
        &mut cloud,
    );
    assert!(err.is_err());
    assert_clean(&ran, &transport, &cloud);
}

#[test]
fn transport_phase_failure_rolls_back_ran() {
    let mut ran = RanController::new(vec![
        Enb::new(EnbId::new(0), CellConfig::default_20mhz()),
        Enb::new(EnbId::new(1), CellConfig::default_20mhz()),
    ]);
    let mut transport = TransportController::new(Topology::testbed(), 1024);
    let mut cloud = CloudController::new(vec![DataCenter::homogeneous(
        DcId::new(1),
        DcKind::Core,
        4,
        cap(32, 65536, 500),
        PlacementStrategy::WorstFit,
    )]);
    let a = MultiDomainAllocator::new(AllocatorConfig::default());
    // URLLC wants the edge DC, which does not exist here: NoDcFits — but to
    // hit the transport phase use an impossible latency for the core path.
    let req = SliceRequest::builder(TenantId::new(1), SliceClass::Embb)
        .throughput(RateMbps::new(10.0))
        .max_latency(Latency::new(2.1)) // RAN 1.5 + EPC 0.5 leaves 0.1ms: infeasible to core
        .build()
        .unwrap();
    let err = a.allocate(
        SliceId::new(1),
        PlmnId::test_slice_plmn(0),
        &req,
        a.nominal_prbs(&req),
        &mut ran,
        &mut transport,
        &mut cloud,
    );
    assert!(err.is_err(), "{err:?}");
    assert_clean(&ran, &transport, &cloud);
}

#[test]
fn cloud_phase_failure_rolls_back_ran_and_transport() {
    let mut ran = RanController::new(vec![Enb::new(EnbId::new(0), CellConfig::default_20mhz())]);
    let mut transport = TransportController::new(Topology::testbed(), 1024);
    // A core DC that passes find_dc's per-resource check but cannot hold
    // the whole stack: one host that fits the largest single VM only.
    let mut cloud = CloudController::new(vec![DataCenter::homogeneous(
        DcId::new(1),
        DcKind::Core,
        1,
        cap(4, 4096, 40),
        PlacementStrategy::FirstFit,
    )]);
    let a = MultiDomainAllocator::new(AllocatorConfig::default());
    let req = request(SliceClass::Embb, 40.0);
    let err = a.allocate(
        SliceId::new(1),
        PlmnId::test_slice_plmn(0),
        &req,
        a.nominal_prbs(&req),
        &mut ran,
        &mut transport,
        &mut cloud,
    );
    assert!(err.is_err(), "{err:?}");
    assert_clean(&ran, &transport, &cloud);
}

#[test]
fn repeated_failed_allocations_never_accumulate_state() {
    let mut ran = RanController::new(vec![Enb::new(EnbId::new(0), CellConfig::default_20mhz())]);
    let mut transport = TransportController::new(Topology::testbed(), 1024);
    let mut cloud = CloudController::new(vec![DataCenter::homogeneous(
        DcId::new(1),
        DcKind::Core,
        1,
        cap(4, 4096, 40),
        PlacementStrategy::FirstFit,
    )]);
    let a = MultiDomainAllocator::new(AllocatorConfig::default());
    for i in 0..50 {
        let req = request(SliceClass::Embb, 40.0);
        let _ = a.allocate(
            SliceId::new(i),
            PlmnId::test_slice_plmn(i % 99),
            &req,
            a.nominal_prbs(&req),
            &mut ran,
            &mut transport,
            &mut cloud,
        );
    }
    assert_clean(&ran, &transport, &cloud);
}

#[test]
fn successful_allocation_then_release_is_clean() {
    let mut ran = RanController::new(vec![Enb::new(EnbId::new(0), CellConfig::default_20mhz())]);
    let mut transport = TransportController::new(Topology::testbed(), 1024);
    let mut cloud = CloudController::new(vec![DataCenter::homogeneous(
        DcId::new(1),
        DcKind::Core,
        4,
        cap(32, 65536, 500),
        PlacementStrategy::WorstFit,
    )]);
    let a = MultiDomainAllocator::new(AllocatorConfig::default());
    let req = request(SliceClass::Embb, 25.0);
    for round in 0..10 {
        let id = SliceId::new(round);
        a.allocate(
            id,
            PlmnId::test_slice_plmn(0),
            &req,
            a.nominal_prbs(&req),
            &mut ran,
            &mut transport,
            &mut cloud,
        )
        .unwrap();
        a.release(id, &mut ran, &mut transport, &mut cloud);
        assert_clean(&ran, &transport, &cloud);
    }
}
