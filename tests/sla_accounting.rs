//! Integration: conservation laws of the revenue/SLA accounting.
//!
//! Whatever the workload, the books must balance: net = income − penalties
//! − refunds; penalties equal violated epochs × per-slice penalty; income
//! equals the sum of admitted prices.

use ovnes_model::revenue::RevenueKind;
use ovnes_model::Money;
use ovnes_orchestrator::{DemoScenario, ScenarioConfig, SliceState};
use ovnes_sim::SimDuration;

fn run(seed: u64) -> DemoScenario {
    let mut s = DemoScenario::build(ScenarioConfig {
        seed,
        arrivals_per_hour: 30.0,
        horizon: SimDuration::from_hours(6),
        ..ScenarioConfig::default()
    });
    s.run();
    s
}

#[test]
fn ledger_balances_exactly() {
    let s = run(42);
    let ledger = s.orchestrator().ledger();
    let income: Money = ledger
        .records()
        .iter()
        .filter(|r| r.kind == RevenueKind::AdmissionIncome)
        .map(|r| r.amount)
        .sum();
    let outflows: Money = ledger
        .records()
        .iter()
        .filter(|r| r.kind != RevenueKind::AdmissionIncome)
        .map(|r| r.amount)
        .sum();
    assert_eq!(ledger.net(), income + outflows);
    assert_eq!(ledger.gross_income(), income);
}

#[test]
fn income_matches_admitted_prices() {
    let s = run(7);
    let o = s.orchestrator();
    let expected: Money = o
        .records()
        .filter(|r| r.state != SliceState::Rejected)
        .map(|r| r.request.price)
        .sum();
    assert_eq!(o.ledger().gross_income(), expected);
}

#[test]
fn penalties_match_violated_epochs() {
    let s = run(13);
    let o = s.orchestrator();
    let expected: Money = o
        .records()
        .map(|r| r.request.penalty.scale(r.epochs_violated as f64))
        .sum();
    assert_eq!(o.ledger().total_penalties(), expected);
}

#[test]
fn penalty_count_matches_violation_counters() {
    let s = run(21);
    let o = s.orchestrator();
    let violated_epochs: u64 = o.records().map(|r| r.epochs_violated).sum();
    assert_eq!(o.ledger().penalty_count() as u64, violated_epochs);
}

#[test]
fn rejected_slices_never_touch_the_ledger() {
    let s = run(33);
    let o = s.orchestrator();
    for record in o.records().filter(|r| r.state == SliceState::Rejected) {
        assert_eq!(
            o.ledger().net_for_slice(record.id),
            Money::ZERO,
            "rejected {} has ledger entries",
            record.id
        );
        assert_eq!(record.epochs_active, 0);
    }
}

#[test]
fn availability_counters_are_consistent() {
    let s = run(55);
    for record in s.orchestrator().records() {
        assert!(record.epochs_violated <= record.epochs_active);
        let a = record.availability();
        assert!((0.0..=1.0).contains(&a), "availability {a}");
    }
}
