//! Integration: conservation laws of the revenue/SLA accounting.
//!
//! Whatever the workload, the books must balance: net = income − penalties
//! − refunds; penalties equal violated epochs × per-slice penalty; income
//! equals the sum of admitted prices.

use ovnes_model::revenue::RevenueKind;
use ovnes_model::{Latency, Money, RateMbps, SliceClass, SliceId, SliceRequest, TenantId};
use ovnes_orchestrator::{DemoScenario, ScenarioConfig, SlaMonitor, SliceRecord, SliceState};
use ovnes_sim::{SimDuration, SimTime};

fn run(seed: u64) -> DemoScenario {
    let mut s = DemoScenario::build(ScenarioConfig {
        seed,
        arrivals_per_hour: 30.0,
        horizon: SimDuration::from_hours(6),
        ..ScenarioConfig::default()
    });
    s.run();
    s
}

#[test]
fn ledger_balances_exactly() {
    let s = run(42);
    let ledger = s.orchestrator().ledger();
    let income: Money = ledger
        .records()
        .iter()
        .filter(|r| r.kind == RevenueKind::AdmissionIncome)
        .map(|r| r.amount)
        .sum();
    let outflows: Money = ledger
        .records()
        .iter()
        .filter(|r| r.kind != RevenueKind::AdmissionIncome)
        .map(|r| r.amount)
        .sum();
    assert_eq!(ledger.net(), income + outflows);
    assert_eq!(ledger.gross_income(), income);
}

#[test]
fn income_matches_admitted_prices() {
    let s = run(7);
    let o = s.orchestrator();
    let expected: Money = o
        .records()
        .filter(|r| r.state != SliceState::Rejected)
        .map(|r| r.request.price)
        .sum();
    assert_eq!(o.ledger().gross_income(), expected);
}

#[test]
fn penalties_match_violated_epochs() {
    let s = run(13);
    let o = s.orchestrator();
    let expected: Money = o
        .records()
        .map(|r| r.request.penalty.scale(r.epochs_violated as f64))
        .sum();
    assert_eq!(o.ledger().total_penalties(), expected);
}

#[test]
fn penalty_count_matches_violation_counters() {
    let s = run(21);
    let o = s.orchestrator();
    let violated_epochs: u64 = o.records().map(|r| r.epochs_violated).sum();
    assert_eq!(o.ledger().penalty_count() as u64, violated_epochs);
}

#[test]
fn rejected_slices_never_touch_the_ledger() {
    let s = run(33);
    let o = s.orchestrator();
    for record in o.records().filter(|r| r.state == SliceState::Rejected) {
        assert_eq!(
            o.ledger().net_for_slice(record.id),
            Money::ZERO,
            "rejected {} has ledger entries",
            record.id
        );
        assert_eq!(record.epochs_active, 0);
    }
}

// ---- book_early_termination boundary cases -----------------------------

/// A record holding a slice priced at 100 with a 5-per-epoch penalty.
fn priced_record() -> SliceRecord {
    let req = SliceRequest::builder(TenantId::new(9), SliceClass::Embb)
        .throughput(RateMbps::new(50.0))
        .duration(SimDuration::from_mins(30))
        .price(Money::from_units(100))
        .penalty(Money::from_units(5))
        .build()
        .unwrap();
    SliceRecord::new(SliceId::new(3), req, SimTime::ZERO)
}

fn refund_for(monitor: &SlaMonitor, id: SliceId) -> Money {
    monitor
        .ledger()
        .records()
        .iter()
        .filter(|r| r.slice == id && r.kind == RevenueKind::EarlyTerminationRefund)
        .map(|r| r.amount)
        .sum()
}

#[test]
fn termination_on_the_admission_epoch_refunds_everything() {
    // Terminated before it ever activated (same epoch as admission): the
    // caller passes unused_fraction = 1.0 and the tenant gets the full
    // price back — net for the slice is exactly zero.
    let mut monitor = SlaMonitor::default();
    let mut record = priced_record();
    record.transition(SliceState::Deploying).unwrap();
    monitor.book_admission(SimTime::ZERO, &record);
    monitor.book_early_termination(SimTime::ZERO, &record, 1.0);

    assert_eq!(refund_for(&monitor, record.id), -record.request.price);
    assert_eq!(monitor.ledger().net_for_slice(record.id), Money::ZERO);
    // Gross income is unaffected by the refund: income and refunds are
    // separate ledger lines, not a netted adjustment.
    assert_eq!(monitor.ledger().gross_income(), record.request.price);
}

#[test]
fn zero_elapsed_termination_refunds_the_full_price() {
    // Terminated at exactly `active_at`: zero elapsed duration, so the
    // unused fraction the orchestrator computes is (1 − 0/total) = 1.0.
    let mut monitor = SlaMonitor::default();
    let mut record = priced_record();
    record.transition(SliceState::Deploying).unwrap();
    monitor.book_admission(SimTime::ZERO, &record);
    let activated = SimTime::from_secs(90);
    record.activate(activated).unwrap();

    let start = record.active_at.unwrap();
    let total = (record.expires_at.unwrap() - start).as_secs_f64();
    let used = activated.saturating_duration_since(start).as_secs_f64();
    let unused = (1.0 - used / total).clamp(0.0, 1.0);
    assert_eq!(unused, 1.0);

    monitor.book_early_termination(activated, &record, unused);
    assert_eq!(refund_for(&monitor, record.id), -record.request.price);
    assert_eq!(monitor.ledger().net_for_slice(record.id), Money::ZERO);
}

#[test]
fn refund_fraction_is_clamped_to_the_unit_interval() {
    // A caller bug (clock skew, negative elapsed time) must never refund
    // more than the price or charge the tenant via a negative refund.
    let mut over = SlaMonitor::default();
    let record = priced_record();
    over.book_early_termination(SimTime::ZERO, &record, 1.7);
    assert_eq!(refund_for(&over, record.id), -record.request.price);

    let mut under = SlaMonitor::default();
    under.book_early_termination(SimTime::ZERO, &record, -0.5);
    assert_eq!(refund_for(&under, record.id), Money::ZERO);
}

#[test]
fn terminating_an_already_degraded_slice_balances_the_books() {
    // A slice that spent epochs Degraded (each booking its penalty) can
    // still be terminated — (Degraded, Terminated) is a legal transition —
    // and the refund stacks on top of the penalties without disturbing
    // either conservation law.
    let mut monitor = SlaMonitor::default();
    let mut record = priced_record();
    record.transition(SliceState::Deploying).unwrap();
    monitor.book_admission(SimTime::ZERO, &record);
    record.activate(SimTime::from_secs(60)).unwrap();

    // Three degraded epochs: nothing delivered, every verdict violated.
    for epoch in 1..=3u64 {
        let now = SimTime::from_secs(60 + epoch * 60);
        let verdict = monitor.assess(
            &record,
            RateMbps::new(40.0),
            RateMbps::ZERO,
            Latency::new(10.0),
        );
        assert!(!verdict.met);
        monitor.book_epoch(now, &mut record, &verdict);
    }
    record.transition(SliceState::Degraded).unwrap();
    assert_eq!(record.epochs_violated, 3);

    // Operator tears it down halfway through its life.
    monitor.book_early_termination(SimTime::from_secs(300), &record, 0.5);
    record.transition(SliceState::Terminated).unwrap();

    let price = record.request.price;
    let penalties = record.request.penalty.scale(record.epochs_violated as f64);
    assert_eq!(monitor.ledger().total_penalties(), penalties);
    assert_eq!(monitor.ledger().penalty_count() as u64, record.epochs_violated);
    assert_eq!(refund_for(&monitor, record.id), -price.scale(0.5));
    assert_eq!(
        monitor.ledger().net_for_slice(record.id),
        price - penalties - price.scale(0.5)
    );
    assert_eq!(record.state, SliceState::Terminated);
}

#[test]
fn availability_counters_are_consistent() {
    let s = run(55);
    for record in s.orchestrator().records() {
        assert!(record.epochs_violated <= record.epochs_active);
        let a = record.availability();
        assert!((0.0..=1.0).contains(&a), "availability {a}");
    }
}
