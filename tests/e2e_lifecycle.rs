//! Integration: the full slice lifecycle across all crates — request,
//! admission, multi-domain allocation, deployment, activation, SLA-
//! monitored service, expiry, and resource reclamation.

use ovnes_bench::{embb_request, testbed_orchestrator, urllc_request};
use ovnes_model::{Money, RateMbps, SliceClass, SliceRequest, TenantId};
use ovnes_orchestrator::{OrchestratorConfig, SliceState};
use ovnes_sim::{SimDuration, SimTime};

fn minutes(n: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_mins(n)
}

#[test]
fn request_to_expiry_walkthrough() {
    let mut o = testbed_orchestrator(OrchestratorConfig::default(), 1);
    let request = SliceRequest::builder(TenantId::new(1), SliceClass::Embb)
        .throughput(RateMbps::new(25.0))
        .duration(SimDuration::from_mins(20))
        .price(Money::from_units(100))
        .penalty(Money::from_units(5))
        .build()
        .unwrap();

    let id = o.submit(SimTime::ZERO, request).unwrap();
    assert_eq!(o.record(id).unwrap().state, SliceState::Deploying);

    // Deployment is "a few seconds": between 5 and 30 s of virtual time.
    let deploy = o.placement(id).unwrap().deploy_time;
    assert!(deploy >= SimDuration::from_secs(5) && deploy <= SimDuration::from_secs(30));

    // First epoch: active. Epochs 1..20: serving. Epoch 21+: expired.
    let r1 = o.run_epoch(minutes(1));
    assert_eq!(r1.activated, vec![id]);
    let record = o.record(id).unwrap();
    assert_eq!(record.state, SliceState::Active);
    assert!(record.active_at.is_some() && record.expires_at.is_some());

    for e in 2..=25 {
        o.run_epoch(minutes(e));
    }
    let record = o.record(id).unwrap();
    assert_eq!(record.state, SliceState::Expired);
    assert!(record.epochs_active >= 19, "served ~20 epochs: {}", record.epochs_active);

    // Everything reclaimed.
    assert!(o.ran().snapshot().enbs.iter().all(|r| r.reserved.is_zero()));
    assert_eq!(o.transport().snapshot().paths, 0);
    assert_eq!(o.cloud().snapshot().stacks, 0);
}

#[test]
fn urllc_end_to_end_latency_holds_at_the_edge() {
    let mut o = testbed_orchestrator(OrchestratorConfig::default(), 2);
    let id = o.submit(SimTime::ZERO, urllc_request(1)).unwrap();
    let p = o.placement(id).unwrap();
    assert_eq!(p.dc.value(), 0, "URLLC at the edge DC");

    let mut violated = 0u64;
    let mut epochs = 0u64;
    for e in 1..=60 {
        let report = o.run_epoch(minutes(e));
        for v in &report.verdicts {
            epochs += 1;
            if !v.met {
                violated += 1;
            }
            // Even when violated on throughput, the latency should be in
            // single-digit ms while the slice is uncongested most epochs.
            assert!(v.latency.value() < 30.0, "latency blowup: {}", v.latency);
        }
    }
    assert!(epochs > 50);
    assert!(
        (violated as f64) < epochs as f64 * 0.25,
        "URLLC violated {violated}/{epochs}"
    );
}

#[test]
fn concurrent_slices_share_the_testbed() {
    let mut o = testbed_orchestrator(OrchestratorConfig::default(), 3);
    let mut admitted = Vec::new();
    for i in 0..6 {
        let req = embb_request(i, 12.0);
        if let Ok(id) = o.submit(SimTime::ZERO, req) {
            admitted.push(id);
        }
    }
    assert!(admitted.len() >= 4, "testbed hosts several slices");
    o.run_epoch(minutes(1));
    assert_eq!(o.count_in_state(SliceState::Active), admitted.len());

    // Both eNBs are in use (best-fit spreads).
    let snap = o.ran().snapshot();
    assert!(snap.enbs.iter().all(|r| r.plmns > 0), "{snap:?}");

    // All monitoring domains report.
    assert_eq!(o.monitoring().len(), 3);
}

#[test]
fn income_booked_at_admission_penalties_on_violation() {
    let mut o = testbed_orchestrator(OrchestratorConfig::default(), 4);
    let id = o.submit(SimTime::ZERO, embb_request(1, 20.0)).unwrap();
    assert_eq!(o.ledger().gross_income(), Money::from_units(80)); // 20 Mbps × 4
    for e in 1..=30 {
        o.run_epoch(minutes(e));
    }
    let record = o.record(id).unwrap();
    let expected_penalties = Money::from_units(4).scale(record.epochs_violated as f64);
    assert_eq!(o.ledger().total_penalties(), expected_penalties);
    assert_eq!(
        o.ledger().net(),
        Money::from_units(80) - expected_penalties
    );
}
