//! Property-based tests (proptest) on the core data structures and
//! cross-crate invariants.

use ovnes_api::{
    FaultInjector, FaultPlan, MessageBus, Response, RetryPolicy, SubstrateElement,
    SubstrateFaultPlan,
};
use ovnes_forecast::{Naive, QuantileProvisioner, ResidualWindow};
use ovnes_model::{DcId, EnbId, Latency, LinkId, Money, Prbs, RateMbps, SliceId, UeId};
use ovnes_orchestrator::admission::knapsack_select;
use ovnes_ran::{schedule_epoch, Cqi, PfScratch, PfState, SliceLoad, UeChannel};
use ovnes_sim::{EventQueue, Histogram, ScheduledId, SimDuration, SimRng, SimTime};
use ovnes_orchestrator::{
    region_scenario_config, DemoScenario, FederationBroker, FederationConfig,
};
use ovnes_transport::{
    dijkstra, dijkstra_base_with, dijkstra_nested_with, dijkstra_with, k_shortest_paths,
    random_mesh, LinkKind, NodeKind, RoutingScratch, Topology, TransportController,
};
use proptest::prelude::*;

proptest! {
    // ---- sim: event queue ------------------------------------------------

    #[test]
    fn event_queue_pops_sorted(times in prop::collection::vec(0u64..10_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut popped = 0;
        while let Some(e) = q.pop() {
            prop_assert!(e.at >= last);
            last = e.at;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    #[test]
    fn event_queue_tie_break_is_fifo(n in 1usize..100) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(SimTime::from_secs(1), i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    // The queue's O(1) `len` is `heap size − cancelled size` with lazy
    // cancellation; this invariant must survive any interleaving of
    // schedule/cancel/pop/peek_time against a trivial model counter.
    #[test]
    fn event_queue_len_consistent_under_arbitrary_interleavings(
        ops in prop::collection::vec((0u8..4, 0u64..120), 1..300)
    ) {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut model_len: usize = 0;
        let mut live: Vec<ScheduledId> = Vec::new();
        for (i, &(op, arg)) in ops.iter().enumerate() {
            match op {
                0 => {
                    // Schedule at/after the watermark (earlier would panic).
                    let at = q.watermark() + SimDuration::from_secs(arg);
                    live.push(q.schedule(at, i as u64));
                    model_len += 1;
                }
                1 => {
                    // Cancel a previously issued handle (possibly stale).
                    if !live.is_empty() {
                        let id = live.remove(arg as usize % live.len());
                        if q.cancel(id) {
                            model_len -= 1;
                        }
                    }
                }
                2 => {
                    if q.pop().is_some() {
                        model_len -= 1;
                    } else {
                        prop_assert_eq!(model_len, 0, "pop returned None on non-empty queue");
                    }
                }
                _ => {
                    // peek_time must not change the observable count.
                    let before = q.len();
                    let _ = q.peek_time();
                    prop_assert_eq!(q.len(), before);
                }
            }
            prop_assert_eq!(q.len(), model_len, "after op {} ({}, {})", i, op, arg);
            prop_assert_eq!(q.is_empty(), model_len == 0);
        }
        // Drain: exactly model_len events remain.
        let mut drained = 0;
        while q.pop().is_some() {
            drained += 1;
        }
        prop_assert_eq!(drained, model_len);
        prop_assert!(q.is_empty());
    }

    // ---- sim: histogram ----------------------------------------------------

    #[test]
    fn histogram_count_and_bounds(values in prop::collection::vec(0.0f64..100.0, 1..500)) {
        let mut h = Histogram::linear(0.0, 100.0, 10);
        for &v in &values {
            h.observe(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        let (buckets, overflow) = h.buckets();
        let total: u64 = buckets.iter().map(|&(_, c)| c).sum::<u64>() + overflow;
        prop_assert_eq!(total, values.len() as u64);
        // Quantiles are monotone and within [min, max].
        let q1 = h.quantile(0.25).unwrap();
        let q2 = h.quantile(0.5).unwrap();
        let q3 = h.quantile(0.75).unwrap();
        prop_assert!(q1 <= q2 && q2 <= q3);
        prop_assert!(q1 >= h.min().unwrap() - 1e-9);
        prop_assert!(q3 <= h.max().unwrap() + 1e-9);
    }

    // ---- sim: rng determinism ----------------------------------------------

    #[test]
    fn rng_streams_reproducible(seed in any::<u64>()) {
        let mut a = SimRng::seed_from(seed);
        let mut b = SimRng::seed_from(seed);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    // ---- model: money ------------------------------------------------------

    #[test]
    fn money_sum_is_associative(cents in prop::collection::vec(-1_000_000i64..1_000_000, 0..50)) {
        let forward: Money = cents.iter().map(|&c| Money::from_cents(c)).sum();
        let backward: Money = cents.iter().rev().map(|&c| Money::from_cents(c)).sum();
        prop_assert_eq!(forward, backward);
        prop_assert_eq!(forward.cents(), cents.iter().sum::<i64>());
    }

    // ---- ran: PRB scheduler --------------------------------------------------

    #[test]
    fn scheduler_never_oversubscribes_and_guarantees_reservations(
        grid in 10u32..200,
        specs in prop::collection::vec((0u32..80, 0.0f64..60.0, 0.1f64..0.8), 1..8)
    ) {
        // Scale reservations so they fit the grid.
        let total_reserved: u32 = specs.iter().map(|&(r, _, _)| r).sum();
        let scale = if total_reserved > grid && total_reserved > 0 {
            grid as f64 / total_reserved as f64
        } else {
            1.0
        };
        let loads: Vec<SliceLoad> = specs
            .iter()
            .enumerate()
            .map(|(i, &(r, offered, rate))| SliceLoad {
                slice: SliceId::new(i as u64),
                reserved: Prbs::new((r as f64 * scale) as u32),
                offered: RateMbps::new(offered),
                prb_rate: RateMbps::new(rate),
            })
            .collect();
        let outs = schedule_epoch(Prbs::new(grid), &loads);
        let total: u32 = outs.iter().map(|o| o.allocated.value()).sum();
        prop_assert!(total <= grid, "allocated {} > grid {}", total, grid);
        for (load, out) in loads.iter().zip(&outs) {
            // Guarantee: each slice gets at least min(needed, reserved),
            // where "needed" uses the scheduler's epsilon-tolerant rounding.
            let needed = if load.prb_rate.is_zero() {
                0
            } else {
                Prbs::for_rate(load.offered, load.prb_rate).value()
            };
            prop_assert!(
                out.allocated.value() >= needed.min(load.reserved.value()),
                "slice {} got {} < guaranteed {}",
                load.slice, out.allocated, needed.min(load.reserved.value())
            );
            // Delivered never exceeds offered.
            prop_assert!(out.delivered.value() <= load.offered.value() + 1e-9);
            // lent + allocated >= reserved accounting.
            prop_assert_eq!(
                out.lent.value(),
                load.reserved.value().saturating_sub(out.allocated.value())
            );
        }
    }

    // ---- ran: proportional-fair UE scheduler ---------------------------------

    // The heap-based grant loop must be bitwise-indistinguishable from the
    // per-PRB argmax reference it replaced — same grants, same order, same
    // float averages — across random rosters (outages, zero-rate UEs,
    // discrete rate classes that force metric ties) and across epochs with
    // a shrinking roster (which exercises slab eviction).
    #[test]
    fn heap_pf_is_bitwise_identical_to_reference(
        prbs in 0u32..60,
        alpha in 0.01f64..0.9,
        specs in prop::collection::vec((0u8..16, 0u8..5), 0..40),
        epochs in 1usize..6,
        shrink in 0usize..10,
    ) {
        // Unique ids by construction; cqi 0 → None (outage); rate class 0
        // → zero prb_rate (unschedulable); few classes → frequent ties.
        let roster: Vec<UeChannel> = specs
            .iter()
            .enumerate()
            .map(|(i, &(cqi, class))| UeChannel {
                ue: UeId::new(i as u64),
                cqi: Cqi::new(cqi),
                prb_rate: RateMbps::new(class as f64 * 0.35),
            })
            .collect();
        let mut heap = PfState::new();
        let mut oracle = PfState::new();
        let mut scratch = PfScratch::new();
        let mut got: Vec<ovnes_ran::UeShare> = Vec::new();
        for e in 0..epochs {
            // Last epoch runs on a truncated roster so eviction of the
            // departed tail must keep both states aligned.
            let live = if e + 1 == epochs {
                roster.len() - shrink.min(roster.len())
            } else {
                roster.len()
            };
            let channels = &roster[..live];
            heap.schedule_into(Prbs::new(prbs), channels, alpha, &mut scratch, &mut got);
            let want = oracle.schedule_reference(Prbs::new(prbs), channels, alpha);
            prop_assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                prop_assert_eq!(g.ue, w.ue);
                prop_assert_eq!(g.prbs, w.prbs);
                prop_assert_eq!(g.rate.value().to_bits(), w.rate.value().to_bits());
            }
            prop_assert_eq!(heap.tracked(), oracle.tracked());
            for c in channels {
                prop_assert_eq!(
                    heap.average(c.ue).to_bits(),
                    oracle.average(c.ue).to_bits(),
                    "average diverged for {:?}",
                    c.ue
                );
            }
            // Grant conservation: every PRB is granted iff anyone can take it.
            let any = channels.iter().any(|c| c.cqi.is_some() && !c.prb_rate.is_zero());
            let total: u32 = got.iter().map(|s| s.prbs.value()).sum();
            prop_assert_eq!(total, if any { prbs } else { 0 });
        }
    }

    // ---- orchestrator: knapsack ----------------------------------------------

    #[test]
    fn knapsack_fits_capacity_and_beats_fcfs(
        cap in 1u32..150,
        items in prop::collection::vec((1u32..50, 1i64..500), 0..12)
    ) {
        let reqs: Vec<(Prbs, Money)> = items
            .iter()
            .map(|&(p, m)| (Prbs::new(p), Money::from_units(m)))
            .collect();
        let selected = knapsack_select(&reqs, Prbs::new(cap));
        let used: u32 = selected.iter().map(|&i| reqs[i].0.value()).sum();
        prop_assert!(used <= cap);
        // No duplicates.
        let mut sorted = selected.clone();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), selected.len());
        // Knapsack revenue >= FCFS revenue.
        let knap_rev: i64 = selected.iter().map(|&i| reqs[i].1.cents()).sum();
        let mut used = 0u32;
        let mut fcfs_rev = 0i64;
        for &(p, m) in &reqs {
            if used + p.value() <= cap {
                used += p.value();
                fcfs_rev += m.cents();
            }
        }
        prop_assert!(knap_rev >= fcfs_rev);
    }

    // ---- transport: routing ------------------------------------------------

    #[test]
    fn dijkstra_is_optimal_among_yens_paths(seed in any::<u64>()) {
        // Random ladder topology.
        let mut rng = SimRng::seed_from(seed);
        let mut b = Topology::builder();
        let nodes: Vec<_> = (0..6)
            .map(|i| b.add_node(NodeKind::Switch(ovnes_model::SwitchId::new(i)), "s"))
            .collect();
        for i in 0..5 {
            b.add_link(
                nodes[i],
                nodes[i + 1],
                LinkKind::Wired,
                RateMbps::new(1000.0),
                ovnes_model::Latency::new(rng.uniform_range(0.1, 5.0)),
            );
        }
        // A few random chords.
        for _ in 0..4 {
            let a_i = rng.uniform_usize(0, 6);
            let b_i = rng.uniform_usize(0, 6);
            if a_i != b_i {
                b.add_link(
                    nodes[a_i],
                    nodes[b_i],
                    LinkKind::Wired,
                    RateMbps::new(1000.0),
                    ovnes_model::Latency::new(rng.uniform_range(0.1, 5.0)),
                );
            }
        }
        let topo = b.build();
        let delay = |l: ovnes_model::LinkId| topo.link(l).delay;
        let best = dijkstra(&topo, nodes[0], nodes[5], |_| true, delay).unwrap();
        let paths = k_shortest_paths(&topo, nodes[0], nodes[5], 5, |_| true, delay);
        prop_assert_eq!(&paths[0], &best);
        // Yen's list is sorted by delay. The algorithms compare integer
        // microseconds (exact arithmetic), so two paths within a microsecond
        // per hop may order either way in raw f64 terms: the tolerance is
        // the quantization bound (0.5 us per link, <= 6 links).
        let delays: Vec<f64> = paths.iter().map(|p| p.total_delay(delay).value()).collect();
        for w in delays.windows(2) {
            prop_assert!(w[0] <= w[1] + 0.003, "{:?}", delays);
        }
        // All loop-free.
        for p in &paths {
            let mut ns = p.nodes.clone();
            ns.sort();
            ns.dedup();
            prop_assert_eq!(ns.len(), p.nodes.len());
        }
    }

    // The CSR flattening must be a pure layout change: on arbitrary random
    // meshes, the CSR walks (the closure variant and the packed-base-delay
    // variant) return exactly the nested oracle's path — including walks
    // with a pseudo-random subset of links filtered out, which the closure
    // variant must honour identically.
    #[test]
    fn csr_dijkstra_walks_match_the_nested_oracle(
        seed in any::<u64>(),
        n in 3usize..48,
        chords in 0usize..80,
        mask in 1u64..7,
        pairs in prop::collection::vec((0usize..48, 0usize..48), 1..10),
    ) {
        let mut rng = SimRng::seed_from(seed);
        let topo = random_mesh(n, chords, RateMbps::new(1000.0), &mut rng);
        let mut scratch = RoutingScratch::new();
        let delay = |l: LinkId| topo.link(l).delay;
        for &(a, b) in &pairs {
            let s = topo.nodes()[a % n].id;
            let t = topo.nodes()[b % n].id;
            let oracle = dijkstra_nested_with(&mut scratch, &topo, s, t, |_| true, delay);
            prop_assert_eq!(
                &dijkstra_with(&mut scratch, &topo, s, t, |_| true, delay),
                &oracle
            );
            prop_assert_eq!(&dijkstra_base_with(&mut scratch, &topo, s, t), &oracle);
            let usable = |l: LinkId| l.value() % 7 != mask;
            let filtered = dijkstra_nested_with(&mut scratch, &topo, s, t, usable, delay);
            prop_assert_eq!(
                &dijkstra_with(&mut scratch, &topo, s, t, usable, delay),
                &filtered
            );
        }
    }

    // ---- forecast: streaming residual quantile -------------------------------

    // The order-maintained residual window must agree bit-for-bit with the
    // clone-and-sort reference after every single push, across arbitrary
    // observe/evict sequences (window smaller than the stream forces
    // evictions) and quantiles spanning [0, 1].
    #[test]
    fn streaming_quantile_matches_sort_oracle(
        values in prop::collection::vec(-1e6f64..1e6, 1..120),
        window in 1usize..40,
        q in 0.0f64..=1.0,
    ) {
        let mut w = ResidualWindow::new(window);
        for &v in &values {
            w.push(v);
            for &qq in &[0.0, 0.5, 0.95, 1.0, q] {
                prop_assert_eq!(
                    w.quantile(qq).map(f64::to_bits),
                    w.quantile_reference(qq).map(f64::to_bits),
                    "q={} after {} pushes (window {})", qq, w.len(), window
                );
            }
        }
        prop_assert_eq!(w.len(), values.len().min(window));
    }

    #[test]
    fn provisioner_quantile_matches_reference(
        values in prop::collection::vec(0.0f64..2.0, 2..100),
        window in 2usize..50,
        q in 0.0f64..=1.0,
    ) {
        let mut prov = QuantileProvisioner::new(Naive::new(), window);
        for &v in &values {
            prov.observe(v);
        }
        prop_assert_eq!(
            prov.residual_quantile(q).map(f64::to_bits),
            prov.residual_quantile_reference(q).map(f64::to_bits)
        );
    }

    // ---- transport: route cache ----------------------------------------------

    // A cached controller and a cache-disabled twin must stay observably
    // identical — same operation results, same reservations, same link
    // usage — across arbitrary interleavings of allocate / resize /
    // release / degrade / restore / reroute. This is the "generation
    // invalidation is never stale" property.
    #[test]
    fn route_cache_matches_uncached_controller(
        ops in prop::collection::vec((0u8..6, 0u8..16, 0u8..4), 1..60)
    ) {
        let mut cached = TransportController::new(Topology::testbed(), 1024);
        let mut plain = TransportController::new(Topology::testbed(), 1024);
        plain.set_route_cache_enabled(false);
        let (srcs, dsts, link_count) = {
            let t = cached.topology();
            (
                [t.radio_site(EnbId::new(0)).unwrap(), t.radio_site(EnbId::new(1)).unwrap()],
                [t.dc_node(DcId::new(0)).unwrap(), t.dc_node(DcId::new(1)).unwrap()],
                t.link_count(),
            )
        };
        let bws = [50.0, 120.0, 300.0, 500.0];
        let factors = [0.1, 0.35, 0.7, 1.0];
        let mut next_slice = 0u64;
        let mut live: Vec<SliceId> = Vec::new();
        for &(op, a, c) in &ops {
            let a = a as usize;
            let c = c as usize;
            match op {
                0 => {
                    let id = SliceId::new(next_slice);
                    next_slice += 1;
                    let args = (srcs[a % 2], dsts[(a / 2) % 2], RateMbps::new(bws[c]));
                    let r1 = cached.allocate(id, args.0, args.1, args.2, Latency::new(10.0));
                    let r2 = plain.allocate(id, args.0, args.1, args.2, Latency::new(10.0));
                    prop_assert_eq!(&r1, &r2, "allocate diverged");
                    if r1.is_ok() {
                        live.push(id);
                    }
                }
                1 => {
                    if !live.is_empty() {
                        let id = live[a % live.len()];
                        prop_assert_eq!(
                            cached.resize(id, RateMbps::new(bws[c])),
                            plain.resize(id, RateMbps::new(bws[c])),
                            "resize diverged"
                        );
                    }
                }
                2 => {
                    if !live.is_empty() {
                        let id = live.remove(a % live.len());
                        prop_assert_eq!(cached.release(id), plain.release(id), "release diverged");
                    }
                }
                3 => {
                    let l = LinkId::new((a % link_count) as u64);
                    prop_assert_eq!(
                        cached.degrade_link(l, factors[c]),
                        plain.degrade_link(l, factors[c]),
                        "degrade diverged"
                    );
                }
                4 => {
                    let l = LinkId::new((a % link_count) as u64);
                    cached.restore_link(l);
                    plain.restore_link(l);
                }
                _ => {
                    if !live.is_empty() {
                        let id = live[a % live.len()];
                        prop_assert_eq!(cached.reroute(id), plain.reroute(id), "reroute diverged");
                        prop_assert_eq!(
                            cached.reservation(id),
                            plain.reservation(id),
                            "post-reroute path diverged"
                        );
                    }
                }
            }
            prop_assert_eq!(cached.snapshot(), plain.snapshot(), "usage diverged");
        }
    }

    // ---- api: substrate fault plan --------------------------------------------

    // `down_at` must agree with naive half-open window arithmetic for any
    // set of windows, and the plan must survive a JSON round-trip intact.
    #[test]
    fn substrate_down_at_matches_window_arithmetic(
        windows in prop::collection::vec((0u64..10_000, 0u64..10_000), 0..20),
        probes in prop::collection::vec(0u64..12_000, 1..50),
    ) {
        let element = SubstrateElement::Link(LinkId::new(3));
        let mut plan = SubstrateFaultPlan::new(7);
        for &(from, until) in &windows {
            plan = plan.with_outage(
                element,
                SimTime::from_secs(from),
                SimTime::from_secs(until),
            );
        }
        for &p in &probes {
            let now = SimTime::from_secs(p);
            let expected = windows.iter().any(|&(from, until)| from <= p && p < until);
            prop_assert_eq!(plan.down_at(element, now), expected, "at {}s", p);
            // Unmentioned elements are always up.
            prop_assert!(!plan.down_at(SubstrateElement::Link(LinkId::new(99)), now));
        }
        // Quietness is exactly "no window with until > from".
        prop_assert_eq!(plan.is_quiet(), windows.iter().all(|&(f, u)| u <= f));
        // Serde round-trip preserves the plan bit-for-bit.
        let json = serde_json::to_string(&plan).unwrap();
        let back: SubstrateFaultPlan = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, plan);
    }

    // Random outage generation is a pure function of (seed, element set):
    // same inputs, same schedule; and every generated window is well-formed
    // and starts inside the horizon.
    #[test]
    fn substrate_random_outages_are_deterministic_and_well_formed(
        seed in any::<u64>(),
        rate in 0.01f64..5.0,
        n_links in 1u64..8,
    ) {
        let elements: Vec<SubstrateElement> =
            (0..n_links).map(|l| SubstrateElement::Link(LinkId::new(l))).collect();
        let horizon = SimDuration::from_hours(6);
        let make = || SubstrateFaultPlan::new(seed).with_random_outages(
            &elements,
            rate,
            SimDuration::from_mins(10),
            horizon,
        );
        let a = make();
        prop_assert_eq!(&a, &make());
        for schedule in a.elements() {
            for &(from, until) in &schedule.outages {
                prop_assert!(until > from, "degenerate window");
                prop_assert!(from < SimTime::ZERO + horizon, "outage born past the horizon");
            }
        }
        // down_elements_at never reports an element the plan doesn't know.
        let probe = SimTime::ZERO + SimDuration::from_hours(3);
        for e in a.down_elements_at(probe) {
            prop_assert!(a.down_at(e, probe));
        }
    }

    // ---- transport: link fail/revive interleavings ----------------------------

    // Reason-stacked link health against a trivial counter model: any
    // interleaving of fail_link / revive_link / fail_switch / revive_switch
    // leaves `link_is_up` exactly where the model says, and reservations
    // are never dropped by health flapping alone.
    #[test]
    fn link_fail_revive_interleavings_match_counter_model(
        ops in prop::collection::vec((0u8..4, 0u8..16), 1..80)
    ) {
        let mut t = TransportController::new(Topology::testbed(), 1024);
        let (src, dst, link_count) = {
            let topo = t.topology();
            (
                topo.radio_site(EnbId::new(0)).unwrap(),
                topo.dc_node(DcId::new(1)).unwrap(),
                topo.link_count(),
            )
        };
        let slice = SliceId::new(0);
        t.allocate(slice, src, dst, RateMbps::new(50.0), Latency::new(20.0)).unwrap();
        let switches = [ovnes_model::SwitchId::new(0), ovnes_model::SwitchId::new(1)];
        // Model: per-link down-reason counters, mirroring fail/revive.
        let mut reasons = vec![0u32; link_count];
        let incident: Vec<Vec<usize>> = vec![vec![0, 1, 2, 3, 4, 5], vec![5, 6]];
        for &(op, a) in &ops {
            match op {
                0 => {
                    let l = a as usize % link_count;
                    t.fail_link(LinkId::new(l as u64));
                    reasons[l] += 1;
                }
                1 => {
                    let l = a as usize % link_count;
                    t.revive_link(LinkId::new(l as u64));
                    reasons[l] = reasons[l].saturating_sub(1);
                }
                2 => {
                    let s = a as usize % 2;
                    t.fail_switch(switches[s]);
                    for &l in &incident[s] {
                        reasons[l] += 1;
                    }
                }
                _ => {
                    let s = a as usize % 2;
                    t.revive_switch(switches[s]);
                    for &l in &incident[s] {
                        reasons[l] = reasons[l].saturating_sub(1);
                    }
                }
            }
            for (l, &r) in reasons.iter().enumerate() {
                prop_assert_eq!(
                    t.link_is_up(LinkId::new(l as u64)),
                    r == 0,
                    "link {} health diverged from model ({} reasons)", l, r
                );
            }
        }
        // Health flapping alone never drops a reservation.
        prop_assert!(t.reservation(slice).is_some());
        // Full recovery: clear every remaining reason; all links come back.
        for (l, r) in reasons.iter().enumerate() {
            for _ in 0..*r {
                t.revive_link(LinkId::new(l as u64));
            }
        }
        prop_assert!(t.down_links().is_empty());
    }

    // ---- api: retry policy ---------------------------------------------------

    #[test]
    fn retry_backoff_is_monotone_and_capped(
        base_ms in 1u64..2_000,
        multiplier in 0.5f64..4.0,
        cap_ms in 1u64..10_000,
        jitter in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_backoff: SimDuration::from_millis(base_ms),
            multiplier,
            max_backoff: SimDuration::from_millis(cap_ms),
            jitter,
            ..RetryPolicy::default()
        };
        let mut rng = SimRng::seed_from(seed);
        let mut prev = SimDuration::ZERO;
        for attempt in 1..10u32 {
            let b = policy.backoff(attempt);
            prop_assert!(b >= prev, "backoff shrank at attempt {}", attempt);
            prop_assert!(b <= policy.max_backoff);
            // Jitter only stretches, within the advertised band.
            let j = policy.jittered_backoff(attempt, &mut rng);
            prop_assert!(j >= b);
            let band = b.as_secs_f64() * (1.0 + jitter) + 1e-6;
            prop_assert!(j.as_secs_f64() <= band, "{j} outside [{b}, {band}]");
            prev = b;
        }
    }

    #[test]
    fn retry_schedule_bounds_attempts_and_deadline(
        base_ms in 1u64..1_000,
        multiplier in 0.5f64..3.0,
        cap_ms in 1u64..4_000,
        deadline_ms in 0u64..8_000,
        max_attempts in 1u32..12,
    ) {
        let policy = RetryPolicy {
            max_attempts,
            base_backoff: SimDuration::from_millis(base_ms),
            multiplier,
            max_backoff: SimDuration::from_millis(cap_ms),
            deadline: SimDuration::from_millis(deadline_ms),
            jitter: 0.0,
        };
        let schedule = policy.nominal_schedule();
        // At most one wait per retry (attempts beyond the first).
        prop_assert!(schedule.len() < max_attempts as usize || max_attempts == 1);
        // The cumulative nominal wait respects the per-call deadline.
        let mut elapsed = SimDuration::ZERO;
        for &w in &schedule {
            elapsed += w;
        }
        prop_assert!(elapsed <= policy.deadline);
        // Waits themselves are monotone non-decreasing.
        for w in schedule.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    // ---- api: fault injection -------------------------------------------------

    #[test]
    fn quiet_fault_plan_is_an_exact_noop(
        seed in any::<u64>(),
        bodies in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 1..20),
    ) {
        // An installed-but-empty plan must be indistinguishable from calling
        // the bus directly: same responses, same served counters, no
        // latency, no recorded faults.
        let echo_bus = || {
            let mut bus = MessageBus::new();
            bus.register("echo", |req| Response::ok(req.id, req.body));
            bus
        };
        let mut plain = echo_bus();
        let mut wrapped = echo_bus();
        let mut inj = FaultInjector::new(FaultPlan::new(seed));
        for (i, body) in bodies.iter().enumerate() {
            let a = plain.call("echo", body.clone()).unwrap();
            let (b, latency) = inj
                .call(&mut wrapped, SimTime::from_secs(i as u64), "echo", body.clone())
                .unwrap();
            prop_assert_eq!(a, b);
            prop_assert_eq!(latency, SimDuration::ZERO);
        }
        prop_assert_eq!(plain.served("echo"), wrapped.served("echo"));
        prop_assert!(inj.stats().is_empty());
    }
}

// ---- orchestrator: federation ----------------------------------------------

proptest! {
    // Full federated runs are expensive; a handful of cases per property
    // still sweeps seeds, load levels, and shard counts every run.
    #![proptest_config(ProptestConfig::with_cases(4))]

    // A 1-region federation IS the demo scenario: the broker adds no
    // observable behaviour of its own — region 0's RNG streams and fold
    // arithmetic reproduce the single-world oracle bit-for-bit, and with
    // no sibling there is never anywhere to spill.
    #[test]
    fn single_region_federation_is_the_demo_scenario(
        seed in 0u64..10_000,
        arrivals in 5.0f64..35.0,
    ) {
        let cfg = FederationConfig {
            seed,
            regions: 1,
            arrivals_per_hour: arrivals,
            horizon: SimDuration::from_hours(1),
            ..FederationConfig::default()
        };
        let fed = FederationBroker::build(cfg.clone()).run();
        prop_assert_eq!(fed.spilled, 0, "one region has nowhere to spill");
        let demo = DemoScenario::build(region_scenario_config(&cfg)).run();
        prop_assert_eq!(fed.admitted, demo.admitted);
        prop_assert_eq!(&fed.regions[0], &demo);
    }

    // Shard-epoch interleaving is invisible: federated admission (spills
    // included) under 1 worker equals the same run under 2 and 5 workers,
    // for arbitrary seeds, shard counts, and load.
    #[test]
    fn federated_admission_is_invariant_to_shard_interleaving(
        seed in 0u64..10_000,
        regions in 1usize..4,
        arrivals in 10.0f64..50.0,
    ) {
        let run_at = |threads: usize| {
            ovnes_sim::par::set_thread_override(Some(threads));
            let out = FederationBroker::build(FederationConfig {
                seed,
                regions,
                arrivals_per_hour: arrivals,
                horizon: SimDuration::from_hours(1),
                ..FederationConfig::default()
            })
            .run();
            ovnes_sim::par::set_thread_override(None);
            out
        };
        let one = run_at(1);
        prop_assert_eq!(&one, &run_at(2));
        prop_assert_eq!(&one, &run_at(5));
    }
}
