//! Integration: bit-for-bit reproducibility — the property the simulation
//! substrate exists to provide. Same seed → identical runs at every layer.

use ovnes_dashboard::DashboardView;
use ovnes_orchestrator::{DemoScenario, ScenarioConfig};
use ovnes_sim::SimDuration;

fn config(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        arrivals_per_hour: 25.0,
        horizon: SimDuration::from_hours(4),
        ..ScenarioConfig::default()
    }
}

#[test]
fn same_seed_identical_summary() {
    let a = DemoScenario::build(config(123)).run();
    let b = DemoScenario::build(config(123)).run();
    assert_eq!(a, b);
}

#[test]
fn same_seed_identical_dashboard() {
    let render = |seed| {
        let mut s = DemoScenario::build(config(seed));
        s.run();
        DashboardView::capture(s.orchestrator()).render()
    };
    assert_eq!(render(99), render(99));
}

#[test]
fn same_seed_identical_ledger() {
    let ledger_digest = |seed| {
        let mut s = DemoScenario::build(config(seed));
        s.run();
        s.orchestrator()
            .ledger()
            .records()
            .iter()
            .map(|r| (r.at, r.slice, r.amount))
            .collect::<Vec<_>>()
    };
    assert_eq!(ledger_digest(7), ledger_digest(7));
}

#[test]
fn different_seeds_diverge() {
    let a = DemoScenario::build(config(1)).run();
    let b = DemoScenario::build(config(2)).run();
    assert_ne!(a, b, "distinct seeds should explore distinct workloads");
}

#[test]
fn monitoring_reports_are_reproducible_across_the_wire() {
    // The REST/JSON boundary must not introduce nondeterminism (e.g. map
    // ordering): reports from identical runs must be byte-identical JSON.
    let reports = |seed| {
        let mut s = DemoScenario::build(config(seed));
        s.run();
        s.orchestrator()
            .monitoring()
            .iter()
            .map(|r| serde_json::to_string(r).unwrap())
            .collect::<Vec<_>>()
    };
    assert_eq!(reports(5), reports(5));
}
