//! Integration: bit-for-bit reproducibility — the property the simulation
//! substrate exists to provide. Same seed → identical runs at every layer.

use ovnes_api::{EndpointFaults, FaultPlan, SubstrateElement, SubstrateFaultPlan};
use ovnes_dashboard::DashboardView;
use ovnes_model::{EnbId, LinkId};
use ovnes_orchestrator::{
    ChaosScenario, DemoScenario, ScenarioConfig, SubstrateScenario, WorldSnapshot,
};
use ovnes_sim::{SimDuration, SimRng, SimTime};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn scratch(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ovnes-determinism-{}-{tag}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        arrivals_per_hour: 25.0,
        horizon: SimDuration::from_hours(4),
        ..ScenarioConfig::default()
    }
}

#[test]
fn same_seed_identical_summary() {
    let a = DemoScenario::build(config(123)).run();
    let b = DemoScenario::build(config(123)).run();
    assert_eq!(a, b);
}

#[test]
fn same_seed_identical_dashboard() {
    let render = |seed| {
        let mut s = DemoScenario::build(config(seed));
        s.run();
        DashboardView::capture(s.orchestrator()).render()
    };
    assert_eq!(render(99), render(99));
}

#[test]
fn same_seed_identical_ledger() {
    let ledger_digest = |seed| {
        let mut s = DemoScenario::build(config(seed));
        s.run();
        s.orchestrator()
            .ledger()
            .records()
            .iter()
            .map(|r| (r.at, r.slice, r.amount))
            .collect::<Vec<_>>()
    };
    assert_eq!(ledger_digest(7), ledger_digest(7));
}

#[test]
fn different_seeds_diverge() {
    let a = DemoScenario::build(config(1)).run();
    let b = DemoScenario::build(config(2)).run();
    assert_ne!(a, b, "distinct seeds should explore distinct workloads");
}

#[test]
fn same_seed_identical_under_active_fault_plan() {
    // Chaos must be as reproducible as the clean run: identical
    // (scenario seed, plan seed) pairs give identical summaries,
    // dashboards, and injected-fault accounting.
    let run = || {
        let plan = FaultPlan::new(4242)
            .with_endpoint("ran/health", EndpointFaults::none().with_drop(0.25))
            .with_endpoint(
                "cloud/health",
                EndpointFaults::none().with_error(0.15).with_outage(
                    SimTime::ZERO + SimDuration::from_mins(45),
                    SimTime::ZERO + SimDuration::from_mins(75),
                ),
            );
        let mut s = ChaosScenario::build(config(321), plan);
        let summary = s.run();
        let dashboard = DashboardView::capture(s.orchestrator()).render();
        let stats = s.orchestrator().control().fault_stats().cloned();
        (summary, dashboard, stats)
    };
    let (sa, da, fa) = run();
    let (sb, db, fb) = run();
    assert_eq!(sa, sb);
    assert_eq!(da, db);
    assert_eq!(fa, fb);
    // The plan actually bit: this is a chaos run, not a trivially-equal one.
    assert!(sa.control_retries > 0, "{sa:?}");
}

fn stormy_substrate_plan(seed: u64) -> SubstrateFaultPlan {
    SubstrateFaultPlan::new(seed)
        .with_outage(
            SubstrateElement::Cell(EnbId::new(0)),
            SimTime::ZERO + SimDuration::from_mins(40),
            SimTime::ZERO + SimDuration::from_mins(70),
        )
        .with_flaps(
            SubstrateElement::Link(LinkId::new(4)),
            SimTime::ZERO + SimDuration::from_mins(90),
            SimDuration::from_mins(5),
            SimDuration::from_mins(20),
            3,
        )
}

#[test]
fn substrate_panel_identical_across_fresh_runs() {
    // Same (scenario seed, substrate plan seed) → two fresh runs render a
    // byte-identical SUBSTRATE panel (and whole dashboard): the detect →
    // assess → repair pipeline draws no randomness of its own.
    let capture = || {
        let mut s = SubstrateScenario::build(config(606), stormy_substrate_plan(17));
        let summary = s.run();
        let view = DashboardView::capture(s.orchestrator());
        let panel = view
            .sections()
            .iter()
            .find(|(title, _)| title == "SUBSTRATE")
            .map(|(_, body)| body.clone())
            .expect("substrate panel present");
        (summary, panel, view.render())
    };
    let (sa, pa, da) = capture();
    let (sb, pb, db) = capture();
    assert_eq!(pa, pb, "substrate panel moved between identical runs");
    assert_eq!(sa, sb);
    assert_eq!(da, db);
    // The plan actually bit: the panel shows real failures, not a no-op.
    assert!(sa.element_failures > 0, "{sa:?}");
}

#[test]
fn substrate_runs_identical_across_thread_counts_and_cache() {
    // The recovery loop runs in the sequential phase of the epoch, so the
    // worker count and the route cache must both be invisible even while
    // elements fail and slices are rerouted/re-attached mid-run.
    let run = |threads: usize, cached: bool| {
        ovnes_sim::par::set_thread_override(Some(threads));
        let mut s = SubstrateScenario::build(config(909), stormy_substrate_plan(23));
        s.orchestrator_mut()
            .transport_mut()
            .set_route_cache_enabled(cached);
        let summary = s.run();
        let dashboard = DashboardView::capture(s.orchestrator()).render();
        let monitoring: Vec<String> = s
            .orchestrator()
            .monitoring()
            .iter()
            .map(|r| serde_json::to_string(r).unwrap())
            .collect();
        ovnes_sim::par::set_thread_override(None);
        (summary, dashboard, monitoring)
    };
    let serial = run(1, true);
    assert_eq!(serial, run(2, true), "2 workers diverged under faults");
    assert_eq!(serial, run(8, true), "8 workers diverged under faults");
    assert_eq!(serial, run(1, false), "route cache visible under faults");
    assert!(serial.0.element_failures > 0, "{:?}", serial.0);
}

#[test]
fn same_seed_identical_across_thread_counts() {
    // The parallel epoch pipeline must be invisible in results: one seed,
    // one output, whether the per-slice and per-cell shards run on 1, 2, or
    // 8 workers. Compare the scenario summary, the rendered dashboard, and
    // the byte-exact JSON of every monitoring report.
    let run = |threads: usize| {
        ovnes_sim::par::set_thread_override(Some(threads));
        let mut s = DemoScenario::build(config(2024));
        let summary = s.run();
        let dashboard = DashboardView::capture(s.orchestrator()).render();
        let monitoring: Vec<String> = s
            .orchestrator()
            .monitoring()
            .iter()
            .map(|r| serde_json::to_string(r).unwrap())
            .collect();
        ovnes_sim::par::set_thread_override(None);
        (summary, dashboard, monitoring)
    };
    let serial = run(1);
    assert_eq!(serial, run(2), "2 workers diverged from serial");
    assert_eq!(serial, run(8), "8 workers diverged from serial");
}

#[test]
fn route_cache_is_invisible_in_results() {
    // The transport route cache is a pure memoization: one seed, one
    // output, cache on (the default) or off. Compare the summary, the
    // rendered dashboard, and the byte-exact JSON of every monitoring
    // report — cache hit/miss counters deliberately live outside the
    // metric registry so they cannot leak into any of these.
    let run = |cached: bool| {
        let mut s = DemoScenario::build(config(777));
        s.orchestrator_mut()
            .transport_mut()
            .set_route_cache_enabled(cached);
        let summary = s.run();
        let dashboard = DashboardView::capture(s.orchestrator()).render();
        let monitoring: Vec<String> = s
            .orchestrator()
            .monitoring()
            .iter()
            .map(|r| serde_json::to_string(r).unwrap())
            .collect();
        let stats = s.orchestrator().transport().route_cache().stats();
        (summary, dashboard, monitoring, stats)
    };
    let (summary_on, dash_on, mon_on, stats_on) = run(true);
    let (summary_off, dash_off, mon_off, stats_off) = run(false);
    assert_eq!(summary_on, summary_off, "summary moved with the cache");
    assert_eq!(dash_on, dash_off, "dashboard moved with the cache");
    assert_eq!(mon_on, mon_off, "monitoring JSON moved with the cache");
    // And the comparison was real: the cached run answered queries.
    assert!(stats_on.misses > 0, "cached run never consulted the cache");
    assert_eq!(
        stats_off.hits + stats_off.misses,
        0,
        "disabled cache must stay cold"
    );
}

#[test]
fn rolling_aggregates_match_scan_reference() {
    // Every TimeSeries keeps O(1) rolling aggregates; the full-scan
    // reference implementations stay in the tree as oracles. After a real
    // scenario, both views must agree bit-for-bit on every series in every
    // domain registry and every per-slice timeline.
    let mut s = DemoScenario::build(config(888));
    s.run();
    let orch = s.orchestrator();
    let mut checked = 0usize;
    let mut check = |name: &str, series: &ovnes_sim::TimeSeries| {
        assert_eq!(
            series.mean().map(f64::to_bits),
            series.scan_mean().map(f64::to_bits),
            "{name} mean"
        );
        assert_eq!(
            series.max().map(f64::to_bits),
            series.scan_max().map(f64::to_bits),
            "{name} max"
        );
        assert_eq!(
            series.min().map(f64::to_bits),
            series.scan_min().map(f64::to_bits),
            "{name} min"
        );
        assert_eq!(
            series.time_weighted_mean().map(f64::to_bits),
            series.scan_time_weighted_mean().map(f64::to_bits),
            "{name} time_weighted_mean"
        );
        checked += 1;
    };
    for registry in [
        orch.metrics(),
        orch.ran().metrics(),
        orch.transport().metrics(),
        orch.cloud().metrics(),
    ] {
        for name in registry.names() {
            if let Some(series) = registry.series_ref(&name) {
                check(&name, series);
            }
        }
    }
    let ids: Vec<_> = orch.records().map(|r| r.id).collect();
    for id in ids {
        if let Some(timeline) = orch.timeline(id) {
            check(&format!("{id} offered"), &timeline.offered);
            check(&format!("{id} delivered"), &timeline.delivered);
            check(&format!("{id} latency"), &timeline.latency);
        }
    }
    assert!(checked > 10, "expected a populated scenario, saw {checked}");
}

#[test]
fn restored_world_matches_uninterrupted_under_combined_chaos() {
    // The acceptance contract under the worst conditions: control-plane
    // faults AND substrate outages active, snapshot taken at an epoch drawn
    // from a seed (so reruns stay reproducible but the cut point is not
    // hand-picked), the live world dropped, and the restored world must
    // still finish with the identical summary, dashboard, and monitoring
    // JSON.
    let plan = || {
        FaultPlan::new(4242)
            .with_endpoint("ran/health", EndpointFaults::none().with_drop(0.25))
            .with_endpoint("transport/health", EndpointFaults::none().with_error(0.15))
    };
    let build = || {
        let mut s = ChaosScenario::build(config(321), plan());
        s.orchestrator_mut()
            .set_substrate_plan(stormy_substrate_plan(17));
        s
    };
    let (reference, ref_dash, ref_monitoring) = {
        let mut s = build();
        let summary = s.run();
        let dash = DashboardView::capture(s.orchestrator()).render();
        let monitoring: Vec<String> = s
            .orchestrator()
            .monitoring()
            .iter()
            .map(|r| serde_json::to_string(r).unwrap())
            .collect();
        (summary, dash, monitoring)
    };

    let mut epoch_rng = SimRng::seed_from(0xE16);
    let cut = 1 + (epoch_rng.uniform_range(0.0, 1.0) * 40.0) as usize;
    let mut live = build();
    for _ in 0..cut {
        assert!(live.step_epoch());
    }
    let world = WorldSnapshot::open(scratch("combined-chaos")).unwrap();
    world.snapshot(&live.export_state()).unwrap();
    drop(live); // only the on-disk snapshot survives the "kill"

    let (epoch, state) = world.restore_latest().unwrap().unwrap();
    assert_eq!(epoch as usize, cut);
    let mut resumed = ChaosScenario::from_state(&state);
    let summary = resumed.run();
    assert_eq!(summary, reference, "summary diverged after restore");
    assert_eq!(
        DashboardView::capture(resumed.orchestrator()).render(),
        ref_dash,
        "dashboard diverged after restore"
    );
    let monitoring: Vec<String> = resumed
        .orchestrator()
        .monitoring()
        .iter()
        .map(|r| serde_json::to_string(r).unwrap())
        .collect();
    assert_eq!(
        monitoring, ref_monitoring,
        "monitoring diverged after restore"
    );
    // Both fault families actually bit.
    assert!(reference.control_retries > 0, "{reference:?}");
}

#[test]
fn restored_substrate_run_matches_final_substrate_summary() {
    // Satellite of the same contract for the physical-fault wrapper: the
    // SubstrateSummary (repair-pipeline counters included) of a restored
    // run equals the uninterrupted one.
    let reference = {
        let mut s = SubstrateScenario::build(config(606), stormy_substrate_plan(17));
        s.run()
    };
    let mut live = SubstrateScenario::build(config(606), stormy_substrate_plan(17));
    for _ in 0..33 {
        assert!(live.step_epoch());
    }
    let world = WorldSnapshot::open(scratch("substrate")).unwrap();
    world.snapshot(&live.export_state()).unwrap();
    drop(live);
    let (_, state) = world.restore_latest().unwrap().unwrap();
    let mut resumed = SubstrateScenario::from_state(&state);
    let summary = resumed.run();
    assert_eq!(summary, reference);
    assert!(summary.element_failures > 0, "{summary:?}");
}

#[test]
fn restored_world_is_worker_count_invariant() {
    // restore(snapshot(a)).run(..b) must equal run(a..b) whatever the
    // worker count: resume the same snapshot under 1, 2, and 8 workers and
    // compare against the uninterrupted serial run.
    let (reference, ref_monitoring) = {
        ovnes_sim::par::set_thread_override(Some(1));
        let mut s = DemoScenario::build(config(2024));
        let summary = s.run();
        let monitoring: Vec<String> = s
            .orchestrator()
            .monitoring()
            .iter()
            .map(|r| serde_json::to_string(r).unwrap())
            .collect();
        ovnes_sim::par::set_thread_override(None);
        (summary, monitoring)
    };

    let mut live = DemoScenario::build(config(2024));
    for _ in 0..19 {
        assert!(live.step_epoch());
    }
    let world = WorldSnapshot::open(scratch("workers")).unwrap();
    world.snapshot(&live.export_state()).unwrap();
    drop(live);

    for threads in [1usize, 2, 8] {
        ovnes_sim::par::set_thread_override(Some(threads));
        let (_, state) = world.restore_latest().unwrap().unwrap();
        let mut resumed = DemoScenario::from_state(&state);
        let summary = resumed.run();
        let monitoring: Vec<String> = resumed
            .orchestrator()
            .monitoring()
            .iter()
            .map(|r| serde_json::to_string(r).unwrap())
            .collect();
        ovnes_sim::par::set_thread_override(None);
        assert_eq!(
            summary, reference,
            "{threads} workers diverged after restore"
        );
        assert_eq!(
            monitoring, ref_monitoring,
            "{threads}-worker monitoring diverged after restore"
        );
    }
}

#[test]
fn monitoring_reports_are_reproducible_across_the_wire() {
    // The REST/JSON boundary must not introduce nondeterminism (e.g. map
    // ordering): reports from identical runs must be byte-identical JSON.
    let reports = |seed| {
        let mut s = DemoScenario::build(config(seed));
        s.run();
        s.orchestrator()
            .monitoring()
            .iter()
            .map(|r| serde_json::to_string(r).unwrap())
            .collect::<Vec<_>>()
    };
    assert_eq!(reports(5), reports(5));
}
