//! Integration: bit-for-bit reproducibility — the property the simulation
//! substrate exists to provide. Same seed → identical runs at every layer.

use ovnes_api::{EndpointFaults, FaultPlan};
use ovnes_dashboard::DashboardView;
use ovnes_orchestrator::{ChaosScenario, DemoScenario, ScenarioConfig};
use ovnes_sim::{SimDuration, SimTime};

fn config(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        arrivals_per_hour: 25.0,
        horizon: SimDuration::from_hours(4),
        ..ScenarioConfig::default()
    }
}

#[test]
fn same_seed_identical_summary() {
    let a = DemoScenario::build(config(123)).run();
    let b = DemoScenario::build(config(123)).run();
    assert_eq!(a, b);
}

#[test]
fn same_seed_identical_dashboard() {
    let render = |seed| {
        let mut s = DemoScenario::build(config(seed));
        s.run();
        DashboardView::capture(s.orchestrator()).render()
    };
    assert_eq!(render(99), render(99));
}

#[test]
fn same_seed_identical_ledger() {
    let ledger_digest = |seed| {
        let mut s = DemoScenario::build(config(seed));
        s.run();
        s.orchestrator()
            .ledger()
            .records()
            .iter()
            .map(|r| (r.at, r.slice, r.amount))
            .collect::<Vec<_>>()
    };
    assert_eq!(ledger_digest(7), ledger_digest(7));
}

#[test]
fn different_seeds_diverge() {
    let a = DemoScenario::build(config(1)).run();
    let b = DemoScenario::build(config(2)).run();
    assert_ne!(a, b, "distinct seeds should explore distinct workloads");
}

#[test]
fn same_seed_identical_under_active_fault_plan() {
    // Chaos must be as reproducible as the clean run: identical
    // (scenario seed, plan seed) pairs give identical summaries,
    // dashboards, and injected-fault accounting.
    let run = || {
        let plan = FaultPlan::new(4242)
            .with_endpoint("ran/health", EndpointFaults::none().with_drop(0.25))
            .with_endpoint(
                "cloud/health",
                EndpointFaults::none().with_error(0.15).with_outage(
                    SimTime::ZERO + SimDuration::from_mins(45),
                    SimTime::ZERO + SimDuration::from_mins(75),
                ),
            );
        let mut s = ChaosScenario::build(config(321), plan);
        let summary = s.run();
        let dashboard = DashboardView::capture(s.orchestrator()).render();
        let stats = s.orchestrator().control().fault_stats().cloned();
        (summary, dashboard, stats)
    };
    let (sa, da, fa) = run();
    let (sb, db, fb) = run();
    assert_eq!(sa, sb);
    assert_eq!(da, db);
    assert_eq!(fa, fb);
    // The plan actually bit: this is a chaos run, not a trivially-equal one.
    assert!(sa.control_retries > 0, "{sa:?}");
}

#[test]
fn same_seed_identical_across_thread_counts() {
    // The parallel epoch pipeline must be invisible in results: one seed,
    // one output, whether the per-slice and per-cell shards run on 1, 2, or
    // 8 workers. Compare the scenario summary, the rendered dashboard, and
    // the byte-exact JSON of every monitoring report.
    let run = |threads: usize| {
        ovnes_sim::par::set_thread_override(Some(threads));
        let mut s = DemoScenario::build(config(2024));
        let summary = s.run();
        let dashboard = DashboardView::capture(s.orchestrator()).render();
        let monitoring: Vec<String> = s
            .orchestrator()
            .monitoring()
            .iter()
            .map(|r| serde_json::to_string(r).unwrap())
            .collect();
        ovnes_sim::par::set_thread_override(None);
        (summary, dashboard, monitoring)
    };
    let serial = run(1);
    assert_eq!(serial, run(2), "2 workers diverged from serial");
    assert_eq!(serial, run(8), "8 workers diverged from serial");
}

#[test]
fn monitoring_reports_are_reproducible_across_the_wire() {
    // The REST/JSON boundary must not introduce nondeterminism (e.g. map
    // ordering): reports from identical runs must be byte-identical JSON.
    let reports = |seed| {
        let mut s = DemoScenario::build(config(seed));
        s.run();
        s.orchestrator()
            .monitoring()
            .iter()
            .map(|r| serde_json::to_string(r).unwrap())
            .collect::<Vec<_>>()
    };
    assert_eq!(reports(5), reports(5));
}
