//! Integration: the chaos suite. A deterministic fault plan — drops, 5xx,
//! delays, corruption, and a scheduled controller outage — is injected into
//! the control plane of a full demo run. The orchestrator must survive
//! (no panics), keep serving slices (a control-plane fault is not a
//! data-plane outage), surface the fallout in its counters, and reproduce
//! the whole run bit-for-bit under the same seeds.

use ovnes_api::{EndpointFaults, FaultPlan, SubstrateElement, SubstrateFaultPlan};
use ovnes_dashboard::DashboardView;
use ovnes_model::{DcId, EnbId, HostId, LinkId, SwitchId};
use ovnes_orchestrator::{ChaosScenario, ChaosSummary, ScenarioConfig, SliceState, SubstrateScenario};
use ovnes_sim::{SimDuration, SimTime};

fn config(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        arrivals_per_hour: 25.0,
        horizon: SimDuration::from_hours(4),
        mean_duration: SimDuration::from_mins(60),
        ..ScenarioConfig::default()
    }
}

/// The acceptance plan: ≤0.3 drop probability on every health probe, some
/// transient 5xx and delay noise, response corruption on one monitoring
/// endpoint, and the transport controller dark for minutes [60, 90).
fn plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_endpoint("ran/health", EndpointFaults::none().with_drop(0.3))
        .with_endpoint(
            "transport/health",
            EndpointFaults::none()
                .with_drop(0.2)
                .with_error(0.1)
                .with_outage(
                    SimTime::ZERO + SimDuration::from_mins(60),
                    SimTime::ZERO + SimDuration::from_mins(90),
                ),
        )
        .with_endpoint(
            "cloud/health",
            EndpointFaults::none().with_delay(0.2, SimDuration::from_millis(150)),
        )
        .with_endpoint(
            "cloud/monitoring",
            EndpointFaults::none().with_corrupt(0.2),
        )
}

fn run(seed: u64) -> (ChaosSummary, String) {
    let mut s = ChaosScenario::build(config(seed), plan(seed ^ 0xFA11));
    let summary = s.run();
    let dashboard = DashboardView::capture(s.orchestrator()).render();
    (summary, dashboard)
}

#[test]
fn chaos_run_survives_and_serves() {
    let mut s = ChaosScenario::build(config(31), plan(31));
    let summary = s.run();

    // The run completed (we got here) and slices were admitted and served.
    assert!(summary.demo.admitted > 0, "{summary:?}");
    assert!(summary.demo.slice_epochs > 0);
    // Slices reached Active: some have completed full lifetimes, and the
    // dashboard's state counts confirm activations happened.
    assert!(summary.demo.expired > 0, "slices lived through the chaos");
    let activated = s
        .orchestrator()
        .records()
        .filter(|r| r.active_at.is_some())
        .count();
    assert!(activated > 0, "slices reached Active under faults");
    // Degradations only ever happen through the Active state, so every
    // restoration is matched by an earlier degradation.
    assert!(summary.restorations <= summary.degradations);
    // Terminal states stayed clean: nothing ended in Degraded limbo.
    for r in s.orchestrator().records() {
        if r.state == SliceState::Degraded {
            // Legal only while a probe is failing at the horizon; a slice
            // stuck here must still carry its placement (serving).
            assert!(s.orchestrator().placement(r.id).is_some());
        }
    }
}

#[test]
fn chaos_counters_match_the_plan() {
    let mut s = ChaosScenario::build(config(32), plan(32));
    let summary = s.run();

    // Drops/errors at these rates must provoke retries but, outside the
    // outage, almost never exhaust them.
    assert!(summary.control_retries > 0, "{summary:?}");
    // The scheduled outage forces probe failures and degradations...
    assert!(summary.control_failures > 0);
    assert!(summary.degradations > 0);
    // ...and recovery restores every degraded slice that didn't expire.
    assert!(summary.restorations > 0);

    // The injector's own accounting agrees: the outage endpoint rejected
    // calls, the noisy endpoints injected faults.
    let stats = s.orchestrator().control().fault_stats().expect("plan installed");
    assert!(stats["transport/health"].outage_rejections > 0);
    assert!(stats["ran/health"].drops > 0);
    assert!(stats["cloud/health"].delays > 0);
    assert!(stats["cloud/monitoring"].corruptions > 0);
}

#[test]
fn chaos_runs_are_bit_for_bit_reproducible() {
    let (summary_a, dash_a) = run(33);
    let (summary_b, dash_b) = run(33);
    assert_eq!(summary_a, summary_b);
    assert_eq!(dash_a, dash_b);
}

#[test]
fn chaos_dashboard_shows_control_plane_fallout() {
    let (_, dashboard) = run(34);
    assert!(dashboard.contains("CONTROL PLANE"), "{dashboard}");
    assert!(dashboard.contains("fault plan: seed"));
    // The events feed narrates the outage and the recovery.
    // (Events roll over, so check the cumulative counters instead.)
    assert!(dashboard.contains("retries"));
}

// ---- substrate faults: physical elements die, the pipeline self-heals ----

fn minutes(n: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_mins(n)
}

/// The substrate acceptance plan: one cell dark for half an hour, the
/// single agg→core fiber cut (no alternative path — forced degradations),
/// a core host crash, and a whole switch outage late in the run. Every
/// window closes before the 4 h horizon.
fn substrate_plan(seed: u64) -> SubstrateFaultPlan {
    SubstrateFaultPlan::new(seed)
        .with_outage(SubstrateElement::Cell(EnbId::new(0)), minutes(40), minutes(70))
        .with_outage(SubstrateElement::Link(LinkId::new(6)), minutes(100), minutes(125))
        .with_outage(
            SubstrateElement::Host(DcId::new(1), HostId::new(0)),
            minutes(140),
            minutes(160),
        )
        .with_outage(
            SubstrateElement::Switch(SwitchId::new(1)),
            minutes(180),
            minutes(200),
        )
}

#[test]
fn substrate_faults_survive_and_account() {
    let mut s = SubstrateScenario::build(config(41), substrate_plan(41));
    let summary = s.run();

    // The run completed and kept serving through four element outages.
    assert!(summary.demo.admitted > 0, "{summary:?}");
    assert_eq!(summary.element_failures, 4, "{summary:?}");
    assert_eq!(summary.element_recoveries, 4, "{summary:?}");
    // The pipeline acted: repairs landed and/or degradations were booked.
    assert!(
        summary.reroutes + summary.reattaches + summary.replacements + summary.degraded > 0,
        "{summary:?}"
    );
    // Every degradation was eventually repaired or restored; with all
    // elements back up, nothing is left in substrate limbo.
    assert_eq!(s.orchestrator().substrate_down().len(), 0);
    assert_eq!(s.orchestrator().substrate_degraded().len(), 0);

    // No silent reservations: every Active slice sits on live elements
    // only, and every substrate-degraded epoch paid its penalty.
    let o = s.orchestrator();
    for r in o.records().filter(|r| r.state == SliceState::Active) {
        if let Some(enb) = o.ran().placement(r.id) {
            assert!(o.ran().cell_is_up(enb), "{} active on a dead cell", r.id);
        }
        if let Some(res) = o.transport().reservation(r.id) {
            for &link in &res.path.links {
                assert!(o.transport().link_is_up(link), "{} active on dead {link}", r.id);
            }
        }
    }
    if summary.degraded > 0 {
        let violated: u64 = o.records().map(|r| r.epochs_violated).sum();
        assert!(violated > 0, "degradations booked no penalty epochs");
    }
}

#[test]
fn substrate_runs_are_bit_for_bit_reproducible() {
    let run = || {
        let mut s = SubstrateScenario::build(config(42), substrate_plan(4242));
        let summary = s.run();
        let dashboard = DashboardView::capture(s.orchestrator()).render();
        (summary, dashboard)
    };
    let (sa, da) = run();
    let (sb, db) = run();
    assert_eq!(sa, sb);
    assert_eq!(da, db);
    assert!(sa.element_failures > 0, "the plan must actually bite: {sa:?}");
}

#[test]
fn quiet_substrate_plan_is_a_no_op_end_to_end() {
    let plain = {
        let mut s = ovnes_orchestrator::DemoScenario::build(config(43));
        let summary = s.run();
        (summary, DashboardView::capture(s.orchestrator()).render())
    };
    let quiet = {
        let mut s = SubstrateScenario::build(config(43), SubstrateFaultPlan::new(5678));
        let summary = s.run();
        (summary.demo.clone(), DashboardView::capture(s.orchestrator()).render())
    };
    assert_eq!(plain.0, quiet.0);
    // Dashboards differ only in the substrate-plan footer line.
    let strip = |s: &str| {
        s.lines()
            .filter(|l| !l.contains("substrate plan") && !l.contains("no substrate plan"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&plain.1), strip(&quiet.1));
}

#[test]
fn combined_control_and_substrate_chaos_is_survivable_and_reproducible() {
    // Control-plane faults and substrate faults at once: the restore path
    // must wait for domain connectivity, the repair path keeps working, and
    // the whole thing stays deterministic.
    let run = || {
        let mut s = ChaosScenario::build(config(44), plan(44));
        s.orchestrator_mut().set_substrate_plan(substrate_plan(44));
        let summary = s.run();
        let dashboard = DashboardView::capture(s.orchestrator()).render();
        (summary, dashboard)
    };
    let (sa, da) = run();
    let (sb, db) = run();
    assert_eq!(sa, sb);
    assert_eq!(da, db);
    assert!(sa.demo.admitted > 0, "{sa:?}");
    assert!(sa.control_retries > 0, "{sa:?}");
}

#[test]
fn empty_plan_is_a_no_op_end_to_end() {
    let plain = {
        let mut s = ovnes_orchestrator::DemoScenario::build(config(35));
        let summary = s.run();
        (summary, DashboardView::capture(s.orchestrator()).render())
    };
    let quiet = {
        let mut s = ChaosScenario::build(config(35), FaultPlan::new(1234));
        let summary = s.run();
        (summary.demo.clone(), DashboardView::capture(s.orchestrator()).render())
    };
    assert_eq!(plain.0, quiet.0);
    // Dashboards differ only in the fault-plan footer line.
    let strip = |s: &str| {
        s.lines()
            .filter(|l| !l.contains("fault plan") && !l.contains("no fault plan"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&plain.1), strip(&quiet.1));
}
