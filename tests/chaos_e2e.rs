//! Integration: the chaos suite. A deterministic fault plan — drops, 5xx,
//! delays, corruption, and a scheduled controller outage — is injected into
//! the control plane of a full demo run. The orchestrator must survive
//! (no panics), keep serving slices (a control-plane fault is not a
//! data-plane outage), surface the fallout in its counters, and reproduce
//! the whole run bit-for-bit under the same seeds.

use ovnes_api::{EndpointFaults, FaultPlan};
use ovnes_dashboard::DashboardView;
use ovnes_orchestrator::{ChaosScenario, ChaosSummary, ScenarioConfig, SliceState};
use ovnes_sim::{SimDuration, SimTime};

fn config(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        arrivals_per_hour: 25.0,
        horizon: SimDuration::from_hours(4),
        mean_duration: SimDuration::from_mins(60),
        ..ScenarioConfig::default()
    }
}

/// The acceptance plan: ≤0.3 drop probability on every health probe, some
/// transient 5xx and delay noise, response corruption on one monitoring
/// endpoint, and the transport controller dark for minutes [60, 90).
fn plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_endpoint("ran/health", EndpointFaults::none().with_drop(0.3))
        .with_endpoint(
            "transport/health",
            EndpointFaults::none()
                .with_drop(0.2)
                .with_error(0.1)
                .with_outage(
                    SimTime::ZERO + SimDuration::from_mins(60),
                    SimTime::ZERO + SimDuration::from_mins(90),
                ),
        )
        .with_endpoint(
            "cloud/health",
            EndpointFaults::none().with_delay(0.2, SimDuration::from_millis(150)),
        )
        .with_endpoint(
            "cloud/monitoring",
            EndpointFaults::none().with_corrupt(0.2),
        )
}

fn run(seed: u64) -> (ChaosSummary, String) {
    let mut s = ChaosScenario::build(config(seed), plan(seed ^ 0xFA11));
    let summary = s.run();
    let dashboard = DashboardView::capture(s.orchestrator()).render();
    (summary, dashboard)
}

#[test]
fn chaos_run_survives_and_serves() {
    let mut s = ChaosScenario::build(config(31), plan(31));
    let summary = s.run();

    // The run completed (we got here) and slices were admitted and served.
    assert!(summary.demo.admitted > 0, "{summary:?}");
    assert!(summary.demo.slice_epochs > 0);
    // Slices reached Active: some have completed full lifetimes, and the
    // dashboard's state counts confirm activations happened.
    assert!(summary.demo.expired > 0, "slices lived through the chaos");
    let activated = s
        .orchestrator()
        .records()
        .filter(|r| r.active_at.is_some())
        .count();
    assert!(activated > 0, "slices reached Active under faults");
    // Degradations only ever happen through the Active state, so every
    // restoration is matched by an earlier degradation.
    assert!(summary.restorations <= summary.degradations);
    // Terminal states stayed clean: nothing ended in Degraded limbo.
    for r in s.orchestrator().records() {
        if r.state == SliceState::Degraded {
            // Legal only while a probe is failing at the horizon; a slice
            // stuck here must still carry its placement (serving).
            assert!(s.orchestrator().placement(r.id).is_some());
        }
    }
}

#[test]
fn chaos_counters_match_the_plan() {
    let mut s = ChaosScenario::build(config(32), plan(32));
    let summary = s.run();

    // Drops/errors at these rates must provoke retries but, outside the
    // outage, almost never exhaust them.
    assert!(summary.control_retries > 0, "{summary:?}");
    // The scheduled outage forces probe failures and degradations...
    assert!(summary.control_failures > 0);
    assert!(summary.degradations > 0);
    // ...and recovery restores every degraded slice that didn't expire.
    assert!(summary.restorations > 0);

    // The injector's own accounting agrees: the outage endpoint rejected
    // calls, the noisy endpoints injected faults.
    let stats = s.orchestrator().control().fault_stats().expect("plan installed");
    assert!(stats["transport/health"].outage_rejections > 0);
    assert!(stats["ran/health"].drops > 0);
    assert!(stats["cloud/health"].delays > 0);
    assert!(stats["cloud/monitoring"].corruptions > 0);
}

#[test]
fn chaos_runs_are_bit_for_bit_reproducible() {
    let (summary_a, dash_a) = run(33);
    let (summary_b, dash_b) = run(33);
    assert_eq!(summary_a, summary_b);
    assert_eq!(dash_a, dash_b);
}

#[test]
fn chaos_dashboard_shows_control_plane_fallout() {
    let (_, dashboard) = run(34);
    assert!(dashboard.contains("CONTROL PLANE"), "{dashboard}");
    assert!(dashboard.contains("fault plan: seed"));
    // The events feed narrates the outage and the recovery.
    // (Events roll over, so check the cumulative counters instead.)
    assert!(dashboard.contains("retries"));
}

#[test]
fn empty_plan_is_a_no_op_end_to_end() {
    let plain = {
        let mut s = ovnes_orchestrator::DemoScenario::build(config(35));
        let summary = s.run();
        (summary, DashboardView::capture(s.orchestrator()).render())
    };
    let quiet = {
        let mut s = ChaosScenario::build(config(35), FaultPlan::new(1234));
        let summary = s.run();
        (summary.demo.clone(), DashboardView::capture(s.orchestrator()).render())
    };
    assert_eq!(plain.0, quiet.0);
    // Dashboards differ only in the fault-plan footer line.
    let strip = |s: &str| {
        s.lines()
            .filter(|l| !l.contains("fault plan") && !l.contains("no fault plan"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&plain.1), strip(&quiet.1));
}
