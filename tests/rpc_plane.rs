//! Integration: the socket RPC control plane against the in-process oracle.
//!
//! The in-process `MessageBus` is the deterministic reference; the framed
//! TCP plane (`spawn_domain_control_servers` + `SocketBus`) is the real
//! deployment shape. These tests pin the acceptance contract: a run whose
//! control plane crosses real sockets finishes with the **byte-identical**
//! summary, dashboard, and monitoring JSON as the same seed in-process —
//! at 1, 2, and 8 workers, and with combined control-plane + substrate
//! chaos active — and the chaos is physically real on the wire (server-side
//! connection teardowns, client reconnects), not just simulated bookkeeping.

use ovnes_api::{EndpointFaults, FaultPlan, SubstrateElement, SubstrateFaultPlan};
use ovnes_dashboard::DashboardView;
use ovnes_model::{EnbId, LinkId};
use ovnes_orchestrator::{
    spawn_domain_control_servers, ChaosScenario, ChaosSummary, DemoScenario, DemoSummary,
    ScenarioConfig,
};
use ovnes_sim::{SimDuration, SimTime};

fn config(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        arrivals_per_hour: 25.0,
        horizon: SimDuration::from_hours(4),
        ..ScenarioConfig::default()
    }
}

/// Everything a transport could possibly perturb: the run summary, the
/// rendered dashboard, and the byte-exact JSON of every monitoring report.
fn artifacts(orch: &ovnes_orchestrator::Orchestrator) -> (String, Vec<String>) {
    let dashboard = DashboardView::capture(orch).render();
    let monitoring = orch
        .monitoring()
        .iter()
        .map(|r| serde_json::to_string(r).unwrap())
        .collect();
    (dashboard, monitoring)
}

#[test]
fn socket_control_matches_in_process_at_every_worker_count() {
    // The oracle: one serial in-process run.
    let (reference, ref_dash, ref_monitoring) = {
        ovnes_sim::par::set_thread_override(Some(1));
        let mut s = DemoScenario::build(config(2024));
        let summary = s.run();
        let (dash, monitoring) = artifacts(s.orchestrator());
        ovnes_sim::par::set_thread_override(None);
        (summary, dash, monitoring)
    };

    for threads in [1usize, 2, 8] {
        ovnes_sim::par::set_thread_override(Some(threads));
        let (servers, socket) = spawn_domain_control_servers().unwrap();
        let mut s = DemoScenario::build(config(2024));
        s.use_socket_control(socket);
        let summary: DemoSummary = s.run();
        let (dash, monitoring) = artifacts(s.orchestrator());
        ovnes_sim::par::set_thread_override(None);

        assert_eq!(
            summary, reference,
            "{threads}-worker over-RPC summary diverged from in-process"
        );
        assert_eq!(
            dash, ref_dash,
            "{threads}-worker over-RPC dashboard diverged"
        );
        assert_eq!(
            monitoring, ref_monitoring,
            "{threads}-worker over-RPC monitoring JSON diverged"
        );
        // The comparison was real: the control plane went over the wire.
        assert!(s.orchestrator().control().is_socket());
        let served: u64 = servers.iter().map(|srv| srv.stats().requests).sum();
        assert!(served > 0, "no request ever crossed a socket");
    }
}

fn control_plan() -> FaultPlan {
    FaultPlan::new(4242)
        .with_endpoint("ran/health", EndpointFaults::none().with_drop(0.25))
        .with_endpoint(
            "cloud/health",
            EndpointFaults::none().with_error(0.15).with_outage(
                SimTime::ZERO + SimDuration::from_mins(45),
                SimTime::ZERO + SimDuration::from_mins(75),
            ),
        )
}

fn substrate_plan() -> SubstrateFaultPlan {
    SubstrateFaultPlan::new(17)
        .with_outage(
            SubstrateElement::Cell(EnbId::new(0)),
            SimTime::ZERO + SimDuration::from_mins(40),
            SimTime::ZERO + SimDuration::from_mins(70),
        )
        .with_flaps(
            SubstrateElement::Link(LinkId::new(4)),
            SimTime::ZERO + SimDuration::from_mins(90),
            SimDuration::from_mins(5),
            SimDuration::from_mins(20),
            3,
        )
}

#[test]
fn socket_chaos_run_matches_in_process_and_the_faults_are_physical() {
    // Combined control-plane + substrate chaos, the worst case the
    // acceptance contract names. Fault *decisions* come from the plan's RNG
    // on the client; over sockets each drop is additionally *realized* as a
    // server-side connection teardown the client must survive.
    let build = || {
        let mut s = ChaosScenario::build(config(321), control_plan());
        s.orchestrator_mut().set_substrate_plan(substrate_plan());
        s
    };

    let (reference, ref_dash, ref_monitoring) = {
        let mut s = build();
        let summary = s.run();
        let (dash, monitoring) = artifacts(s.orchestrator());
        (summary, dash, monitoring)
    };
    // The plan actually bit in the oracle run.
    assert!(reference.control_retries > 0, "{reference:?}");

    let (servers, socket) = spawn_domain_control_servers().unwrap();
    let mut s = build();
    s.use_socket_control(socket);
    let summary: ChaosSummary = s.run();
    let (dash, monitoring) = artifacts(s.orchestrator());

    assert_eq!(summary, reference, "over-RPC chaos summary diverged");
    assert_eq!(dash, ref_dash, "over-RPC chaos dashboard diverged");
    assert_eq!(monitoring, ref_monitoring, "over-RPC chaos monitoring diverged");

    // The chaos was real on the wire. Every dropped probe tore down the
    // RAN server's connection (a ChaosReset followed by a close the client
    // witnessed)...
    let ran = &servers[0];
    let stats = ran.stats();
    assert!(stats.chaos_resets > 0, "no drop was realized on the socket");
    // ...and the client transparently reconnected afterwards. Every reset
    // consumes one established connection and at most one (the last) can
    // still be live at the horizon, so the accepted-connection count is
    // pinned by the teardown count.
    assert!(
        stats.connections > 1,
        "teardowns without reconnects: {stats:?}"
    );
    assert!(
        stats.connections >= stats.chaos_resets
            && stats.connections <= stats.chaos_resets + 1,
        "connection churn must be exactly the teardown churn: {stats:?}"
    );
}

#[test]
fn pipelining_spans_all_three_domain_servers() {
    // One SocketBus, three servers: a pipelined batch interleaving all
    // domains comes back fully, in request order, with per-endpoint served
    // counts intact.
    let (servers, mut socket) = spawn_domain_control_servers().unwrap();
    let endpoints = ["ran/health", "transport/health", "cloud/health"];
    let calls: Vec<(String, Vec<u8>)> = (0..12)
        .map(|i| (endpoints[i % 3].to_owned(), Vec::new()))
        .collect();
    let results = socket.call_pipelined(calls);
    assert_eq!(results.len(), 12);
    for (i, result) in results.iter().enumerate() {
        let resp = result.as_ref().expect("health responds");
        assert_eq!(resp.id, i as u64, "responses must land in request order");
    }
    for endpoint in endpoints {
        assert_eq!(socket.served(endpoint), 4, "{endpoint}");
    }
    for server in &servers {
        assert_eq!(server.stats().requests, 4);
    }
}
