//! Self-test of the divergence bisector: checkpoint two runs of the same
//! scenario side by side, inject a deliberate one-bit divergence into one
//! of them at a known epoch, and assert `replay_bisect` pinpoints exactly
//! that epoch and the perturbed component — in O(log n) manifest loads,
//! not a linear scan.

use ovnes_orchestrator::{replay_bisect, DemoScenario, ScenarioConfig, WorldSnapshot};
use ovnes_sim::SimDuration;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn scratch(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ovnes-bisect-{}-{tag}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        arrivals_per_hour: 40.0,
        horizon: SimDuration::from_hours(3),
        mean_duration: SimDuration::from_mins(45),
        ..ScenarioConfig::default()
    }
}

const EPOCHS: u64 = 24;

/// Run the scenario to `EPOCHS`, checkpointing after every epoch. At epoch
/// `flip_at` (if any), flip one bit of the run cursor's `submitted` counter
/// in the *world itself* — the run resumes from the perturbed state, so the
/// divergence is live from that point on, exactly like a real
/// nondeterminism bug would be.
fn checkpoint_run(tag: &str, seed: u64, flip_at: Option<u64>) -> WorldSnapshot {
    let world = WorldSnapshot::open(scratch(tag)).unwrap();
    let mut scn = DemoScenario::build(config(seed));
    for epoch in 1..=EPOCHS {
        assert!(scn.step_epoch());
        if flip_at == Some(epoch) {
            let mut state = scn.export_state();
            state
                .cursor
                .as_mut()
                .expect("cursor live mid-run")
                .submitted ^= 1;
            scn = DemoScenario::from_state(&state);
        }
        world.snapshot(&scn.export_state()).unwrap();
    }
    world
}

#[test]
fn bisector_pinpoints_injected_one_bit_divergence() {
    let clean = checkpoint_run("clean", 51, None);
    for flip_at in [1u64, 13, EPOCHS] {
        let flipped = checkpoint_run(&format!("flip{flip_at}"), 51, Some(flip_at));
        let d = replay_bisect(&clean, &flipped)
            .unwrap()
            .expect("a flipped bit must be found");
        assert_eq!(
            d.epoch, flip_at,
            "bisector blamed epoch {} for a bit flipped at {flip_at}",
            d.epoch
        );
        assert!(
            d.components.contains(&"cursor".to_string()),
            "perturbed component not named at epoch {flip_at}: {:?}",
            d.components
        );
        // At the first divergent epoch only the cursor has moved; the
        // cascade into other components happens in later epochs.
        assert_eq!(
            d.components,
            vec!["cursor".to_string()],
            "first divergence must implicate only the flipped component"
        );
        assert!(
            d.probes <= EPOCHS.ilog2() as u64 + 2,
            "expected a binary search, saw {} probes over {EPOCHS} checkpoints",
            d.probes
        );
    }
}

#[test]
fn one_bit_divergence_cascades_but_origin_stays_pinned() {
    // `submitted` only feeds the summary, so flip a bit that changes the
    // dynamics instead: the next-arrival clock. Later checkpoints then
    // diverge in many components (slices, rng, telemetry, …) — yet the
    // bisector still lands on the injection epoch, where only the cursor
    // had moved.
    let clean = checkpoint_run("cascade-clean", 52, None);
    let world = WorldSnapshot::open(scratch("cascade-flip")).unwrap();
    let mut scn = DemoScenario::build(config(52));
    let flip_at = 9u64;
    for epoch in 1..=EPOCHS {
        assert!(scn.step_epoch());
        if epoch == flip_at {
            let mut state = scn.export_state();
            let cursor = state.cursor.as_mut().expect("cursor live mid-run");
            cursor.next_arrival += SimDuration::from_secs(1);
            scn = DemoScenario::from_state(&state);
        }
        world.snapshot(&scn.export_state()).unwrap();
    }
    let d = replay_bisect(&clean, &world)
        .unwrap()
        .expect("shifted arrival clock must diverge");
    assert_eq!(d.epoch, flip_at);
    assert_eq!(d.components, vec!["cursor".to_string()]);
    // And the divergence really did cascade by the final checkpoint.
    let last_clean = clean.store().load_manifest(EPOCHS).unwrap();
    let last_flipped = world.store().load_manifest(EPOCHS).unwrap();
    let moved = last_clean
        .sections
        .iter()
        .filter(|(name, section)| last_flipped.sections.get(*name) != Some(section))
        .count();
    assert!(
        moved > 1,
        "expected the one-bit flip to cascade into several components, saw {moved}"
    );
}

#[test]
fn identical_runs_never_diverge() {
    let a = checkpoint_run("twin-a", 53, None);
    let b = checkpoint_run("twin-b", 53, None);
    assert_eq!(replay_bisect(&a, &b).unwrap(), None);
}
