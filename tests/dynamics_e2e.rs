//! Integration: the dynamic behaviours layered on the core loop — weather
//! fades with reroute, the batch knapsack broker, cloud-side vEPC scaling,
//! and UE mobility — all through the public orchestrator API.

use ovnes_bench::{embb_request, testbed_orchestrator};
use ovnes_model::{Money, RateMbps, SliceClass, SliceRequest, TenantId};
use ovnes_orchestrator::{OrchestratorConfig, PolicyKind, SliceState};
use ovnes_ran::MobilityModel;
use ovnes_sim::{SimDuration, SimTime};
use ovnes_transport::LinkKind;

fn minutes(n: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_mins(n)
}

#[test]
fn weather_runs_are_reproducible_and_isolated() {
    // Same seed, weather on: identical runs.
    let run = |weather: bool| {
        let config = OrchestratorConfig {
            weather_enabled: weather,
            ..OrchestratorConfig::default()
        };
        let mut o = testbed_orchestrator(config, 77);
        o.submit(SimTime::ZERO, embb_request(1, 20.0)).unwrap();
        let mut digest = Vec::new();
        for e in 1..=120 {
            let r = o.run_epoch(minutes(e));
            digest.push((
                r.verdicts.iter().filter(|v| !v.met).count(),
                r.net_revenue,
            ));
        }
        digest
    };
    assert_eq!(run(true), run(true));
    // Weather isolation: the *radio* outcomes with weather on/off are
    // identical whenever the sky never actually bites (weather draws come
    // from a dedicated stream). We can't assert full equality (fades do
    // bite), but determinism per arm is the contract.
    assert_eq!(run(false), run(false));
}

#[test]
fn injected_fade_caps_throughput_and_reroute_recovers() {
    let config = OrchestratorConfig {
        overbooking_enabled: false,
        policy: PolicyKind::Fcfs,
        ..OrchestratorConfig::default()
    };
    let mut o = testbed_orchestrator(config, 5);
    // Two slices on the same eNB so one mmWave link carries 50 Mbps.
    let id1 = o.submit(SimTime::ZERO, embb_request(1, 25.0)).unwrap();
    let id2 = o.submit(SimTime::ZERO, embb_request(2, 25.0)).unwrap();
    o.run_epoch(minutes(1)); // activate

    // Every mmWave link carrying reservations (best-fit spread the two
    // slices across the two eNBs, one per uplink).
    let mm_links: Vec<_> = o
        .transport()
        .topology()
        .links()
        .iter()
        .filter(|l| l.kind == LinkKind::MmWave)
        .map(|l| l.id)
        .filter(|&l| o.transport().link_usage(l).reserved.value() > 0.0)
        .collect();
    assert!(!mm_links.is_empty());

    // Blackout-grade fade: 1000 → 10 Mbps under 25 reserved per link.
    let mut affected = Vec::new();
    for &mm in &mm_links {
        affected.extend(o.inject_link_degradation(mm, 0.01));
    }
    assert!(!affected.is_empty(), "links were oversubscribed");
    for slice in &affected {
        // Before reroute, the slice's deliverable share is cut hard.
        let share = o.transport().capacity_share(*slice).unwrap();
        assert!(share < 0.5, "{slice} share {share}");
        assert!(o.reroute_slice(*slice), "µwave has room for {slice}");
    }
    let report = o.run_epoch(minutes(2));
    // After rerouting, the fade caps nobody; any violation left is radio
    // congestion.
    for v in &report.verdicts {
        if v.slice == id1 || v.slice == id2 {
            let share = o.transport().capacity_share(v.slice).unwrap();
            assert_eq!(share, 1.0, "{} still capped", v.slice);
        }
    }
    for &mm in &mm_links {
        o.restore_link(mm);
    }
}

#[test]
fn batch_broker_full_cycle() {
    let config = OrchestratorConfig {
        batch_window: Some(3),
        overbooking_enabled: false,
        policy: PolicyKind::Fcfs,
        ..OrchestratorConfig::default()
    };
    let mut o = testbed_orchestrator(config, 9);
    for t in 0..8u64 {
        let req = SliceRequest::builder(TenantId::new(t), SliceClass::Embb)
            .throughput(RateMbps::new(20.0)) // 40 PRBs each; 5 of 8 fit
            .price(Money::from_units(10 + 10 * t as i64))
            .duration(SimDuration::from_hours(2))
            .build()
            .unwrap();
        o.enqueue(req);
    }
    let mut admitted = Vec::new();
    let mut rejected = 0;
    for e in 1..=6 {
        let r = o.run_epoch(minutes(e));
        admitted.extend(r.batch_admitted.clone());
        rejected += r.batch_rejected;
    }
    assert_eq!(admitted.len() + rejected, 8, "every request decided");
    // The knapsack selects 5 × 40 PRBs against the 200-PRB aggregate, but
    // the radio is two 100-PRB cells: only 2 such slices fit per cell, so
    // the allocator bounces the fifth winner (bin packing < knapsack).
    assert_eq!(admitted.len(), 4);
    // The knapsack's shortlist was the most valuable five (prices 40..80),
    // so nothing cheaper than 40 was ever allocated.
    let min_price = admitted
        .iter()
        .map(|&id| o.record(id).unwrap().request.price.units())
        .min()
        .unwrap();
    assert!(min_price >= 40, "cheapest admitted {min_price}");
    // Decided rejections (3 losers + 1 bounced winner) are terminal.
    assert_eq!(o.count_in_state(SliceState::Rejected), 4);
}

#[test]
fn reconfiguration_scales_the_cloud_stack_too() {
    let config = OrchestratorConfig {
        overbooking: ovnes_orchestrator::OverbookingConfig {
            season_period: 6,
            min_residuals: 4,
            ..Default::default()
        },
        reconfig_every: 2,
        ..OrchestratorConfig::default()
    };
    let mut o = testbed_orchestrator(config, 3);
    let id = o.submit(SimTime::ZERO, embb_request(1, 40.0)).unwrap();
    // Warm the forecaster (2 seasons + residuals), then reconfigure.
    for e in 1..=40 {
        o.run_epoch(minutes(e));
    }
    let stack = o.cloud().stack_for_slice(id).expect("active slice");
    let scaled: Vec<_> = stack
        .vms
        .iter()
        .filter(|vm| vm.current != vm.demand)
        .map(|vm| vm.name.clone())
        .collect();
    assert!(
        !scaled.is_empty(),
        "user-plane VMs should have been scaled down: {stack:?}"
    );
    for name in &scaled {
        assert!(name == "sgw" || name == "pgw", "control plane scaled: {name}");
    }
}

#[test]
fn mobility_config_changes_outcomes_but_not_determinism() {
    let run = |mobility: MobilityModel| {
        let config = OrchestratorConfig {
            mobility,
            ..OrchestratorConfig::default()
        };
        let mut o = testbed_orchestrator(config, 11);
        o.submit(SimTime::ZERO, embb_request(1, 30.0)).unwrap();
        let mut violations = 0usize;
        for e in 1..=240 {
            let r = o.run_epoch(minutes(e));
            violations += r.verdicts.iter().filter(|v| !v.met).count();
        }
        violations
    };
    let stationary = run(MobilityModel::stationary());
    let stationary2 = run(MobilityModel::stationary());
    assert_eq!(stationary, stationary2, "deterministic");
    let vehicular = run(MobilityModel::vehicular());
    // Vehicular drift explores the cell edge: never *fewer* bad epochs than
    // the stationary channel in expectation; allow equality for this seed.
    assert!(
        vehicular >= stationary,
        "vehicular {vehicular} vs stationary {stationary}"
    );
}

#[test]
fn host_failure_causes_outage_then_recovery() {
    let mut o = testbed_orchestrator(OrchestratorConfig::default(), 21);
    let id = o.submit(SimTime::ZERO, embb_request(1, 25.0)).unwrap();
    o.run_epoch(minutes(1)); // active and serving

    // Kill the host carrying the slice's vEPC.
    let stack = o.cloud().stack_for_slice(id).expect("deployed").clone();
    let (redeployed, lost) = o.inject_host_failure(minutes(1), stack.dc, stack.vms[0].host);
    assert_eq!(redeployed, vec![id]);
    assert!(lost.is_empty(), "plenty of spare cloud capacity");

    // Inject a second failure just before an epoch boundary so the ~13 s
    // vEPC reboot is guaranteed to overlap the epoch: total outage.
    let stack = o.cloud().stack_for_slice(id).expect("redeployed").clone();
    let boundary = minutes(3);
    let (redeployed, _) = o.inject_host_failure(
        boundary - ovnes_sim::SimDuration::from_secs(5),
        stack.dc,
        stack.vms[0].host,
    );
    assert_eq!(redeployed, vec![id]);
    o.run_epoch(minutes(2));
    let report = o.run_epoch(boundary);
    let verdict = report.verdicts.iter().find(|v| v.slice == id).expect("active");
    assert_eq!(verdict.delivered.value(), 0.0, "total outage while rebooting");
    assert!(!verdict.met);

    // A few epochs later the fresh vEPC serves again.
    let report = o.run_epoch(minutes(5));
    let verdict = report.verdicts.iter().find(|v| v.slice == id).expect("active");
    assert!(verdict.delivered.value() > 0.0, "recovered");

    // The event feed narrates the failure and recovery.
    let log: Vec<String> = o.events().entries().map(|e| e.to_string()).collect();
    assert!(log.iter().any(|l| l.contains("host failure")), "{log:?}");
}

#[test]
fn unrecoverable_host_failure_terminates_with_refund() {
    // A cloud with exactly one host: after it dies, nothing can be
    // redeployed anywhere.
    use ovnes_cloud::host::HostCapacity;
    use ovnes_cloud::{CloudController, DataCenter, DcKind, PlacementStrategy};
    use ovnes_model::{DcId, DiskGb, MemMb, VCpus};
    use ovnes_ran::{CellConfig, Enb, RanController};
    use ovnes_sim::SimRng;
    use ovnes_transport::{Topology, TransportController};

    let cell = CellConfig::default_20mhz();
    let ran = RanController::new(vec![
        Enb::new(ovnes_model::EnbId::new(0), cell),
        Enb::new(ovnes_model::EnbId::new(1), cell),
    ]);
    let transport = TransportController::new(Topology::testbed(), 1024);
    let cloud = CloudController::new(vec![DataCenter::homogeneous(
        DcId::new(1),
        DcKind::Core,
        1,
        HostCapacity {
            vcpus: VCpus::new(32),
            mem: MemMb::new(65_536),
            disk: DiskGb::new(500),
        },
        PlacementStrategy::WorstFit,
    )]);
    let mut o = ovnes_orchestrator::Orchestrator::new(
        OrchestratorConfig::default(),
        ran,
        transport,
        cloud,
        cell,
        SimRng::seed_from(4),
    );
    let id = o.submit(SimTime::ZERO, embb_request(1, 20.0)).unwrap();
    o.run_epoch(minutes(1));
    let income_before = o.ledger().net();

    let stack = o.cloud().stack_for_slice(id).expect("deployed").clone();
    let (redeployed, lost) = o.inject_host_failure(minutes(2), stack.dc, stack.vms[0].host);
    assert!(redeployed.is_empty());
    assert_eq!(lost, vec![id]);
    assert_eq!(o.record(id).unwrap().state, SliceState::Terminated);
    // The tenant got (most of) their money back.
    assert!(o.ledger().net() < income_before);
    // Everything else is clean.
    assert_eq!(o.transport().snapshot().paths, 0);
    assert!(o.ran().snapshot().enbs.iter().all(|r| r.reserved.is_zero()));
}

#[test]
fn event_feed_narrates_the_lifecycle() {
    let mut o = testbed_orchestrator(OrchestratorConfig::default(), 2);
    let id = o.submit(SimTime::ZERO, embb_request(1, 10.0)).unwrap();
    for e in 1..=125 {
        o.run_epoch(minutes(e));
    }
    let log: Vec<String> = o.events().entries().map(|e| e.to_string()).collect();
    let has = |needle: &str| log.iter().any(|l| l.contains(needle));
    assert!(has(&format!("{id} admitted")), "{log:?}");
    assert!(has(&format!("{id} active")));
    assert!(has(&format!("{id} expired")));
}
